// Lightweight tabular output: the benchmark harnesses print every paper
// table/figure as rows, both human-aligned and CSV/markdown for scripting.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace wavetune::util {

/// Column-oriented table of strings with typed-append convenience.
class Table {
public:
  explicit Table(std::vector<std::string> headers);

  std::size_t columns() const { return headers_.size(); }
  std::size_t rows() const { return cells_.size(); }

  /// Appends a row; throws if the arity does not match the header count.
  void add_row(std::vector<std::string> cells);

  /// Builder for mixed-type rows: tbl.row().add(3).add("x").add(1.5).done();
  class RowBuilder {
  public:
    explicit RowBuilder(Table& t) : table_(t) {}
    RowBuilder& add(const std::string& s);
    RowBuilder& add(const char* s);
    RowBuilder& add(double v, int precision = 3);
    RowBuilder& add(long long v);
    RowBuilder& add(int v);
    RowBuilder& add(std::size_t v);
    void done();

  private:
    Table& table_;
    std::vector<std::string> cells_;
  };
  RowBuilder row() { return RowBuilder(*this); }

  const std::vector<std::string>& headers() const { return headers_; }
  const std::vector<std::vector<std::string>>& data() const { return cells_; }

  std::string to_aligned() const;   ///< padded plain text
  std::string to_markdown() const;  ///< GitHub-flavoured markdown
  std::string to_csv() const;       ///< RFC-4180-ish CSV

  /// Writes CSV to a file; throws std::runtime_error on I/O failure.
  void save_csv(const std::string& path) const;

private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> cells_;
};

/// Formats a double with fixed precision, trimming trailing zeros.
std::string format_double(double v, int precision = 3);

}  // namespace wavetune::util
