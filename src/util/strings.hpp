// Small string helpers shared across modules.
#pragma once

#include <string>
#include <vector>

namespace wavetune::util {

std::vector<std::string> split(const std::string& s, char delim);
std::string join(const std::vector<std::string>& parts, const std::string& sep);
std::string trim(const std::string& s);
std::string to_lower(const std::string& s);
bool starts_with(const std::string& s, const std::string& prefix);
bool ends_with(const std::string& s, const std::string& suffix);

}  // namespace wavetune::util
