#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace wavetune::util {

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return s / static_cast<double>(xs.size() - 1);
}

double stddev(std::span<const double> xs) { return std::sqrt(variance(xs)); }

double percentile(std::span<const double> xs, double p) {
  if (xs.empty()) throw std::invalid_argument("percentile: empty sample");
  if (p < 0.0 || p > 100.0) throw std::invalid_argument("percentile: p out of range");
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted.front();
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(rank));
  const auto hi = static_cast<std::size_t>(std::ceil(rank));
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

double median(std::span<const double> xs) { return percentile(xs, 50.0); }

Summary summarize(std::span<const double> xs) {
  Summary s;
  s.count = xs.size();
  if (xs.empty()) return s;
  s.min = *std::min_element(xs.begin(), xs.end());
  s.max = *std::max_element(xs.begin(), xs.end());
  s.q1 = percentile(xs, 25.0);
  s.median = percentile(xs, 50.0);
  s.q3 = percentile(xs, 75.0);
  s.mean = mean(xs);
  s.stddev = stddev(xs);
  return s;
}

double pearson(std::span<const double> xs, std::span<const double> ys) {
  if (xs.size() != ys.size()) throw std::invalid_argument("pearson: size mismatch");
  if (xs.size() < 2) return 0.0;
  const double mx = mean(xs);
  const double my = mean(ys);
  double sxy = 0.0;
  double sxx = 0.0;
  double syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    sxy += (xs[i] - mx) * (ys[i] - my);
    sxx += (xs[i] - mx) * (xs[i] - mx);
    syy += (ys[i] - my) * (ys[i] - my);
  }
  if (sxx == 0.0 || syy == 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

double Histogram::bin_width() const {
  if (counts.empty()) return 0.0;
  return (hi - lo) / static_cast<double>(counts.size());
}

Histogram histogram(std::span<const double> xs, std::size_t bins) {
  if (bins == 0) throw std::invalid_argument("histogram: zero bins");
  Histogram h;
  h.counts.assign(bins, 0);
  if (xs.empty()) return h;
  h.lo = *std::min_element(xs.begin(), xs.end());
  h.hi = *std::max_element(xs.begin(), xs.end());
  if (h.hi == h.lo) {
    h.counts[0] = xs.size();
    return h;
  }
  for (double x : xs) {
    auto idx = static_cast<std::size_t>((x - h.lo) / (h.hi - h.lo) * static_cast<double>(bins));
    if (idx >= bins) idx = bins - 1;
    ++h.counts[idx];
  }
  return h;
}

ViolinSummary violin(std::span<const double> xs, std::size_t grid_points) {
  if (grid_points < 2) throw std::invalid_argument("violin: need >=2 grid points");
  ViolinSummary v;
  v.summary = summarize(xs);
  if (xs.empty()) return v;
  const double sd = v.summary.stddev;
  const double iqr = v.summary.q3 - v.summary.q1;
  const double n = static_cast<double>(xs.size());
  // Silverman's rule of thumb; guard against zero-spread samples.
  double sigma = std::min(sd, iqr / 1.34);
  if (sigma <= 0.0) sigma = std::max(sd, 1e-9);
  v.bandwidth = 0.9 * sigma * std::pow(n, -0.2);
  if (v.bandwidth <= 0.0) v.bandwidth = 1e-9;

  const double lo = v.summary.min;
  const double hi = v.summary.max;
  v.grid.resize(grid_points);
  v.density.resize(grid_points);
  for (std::size_t i = 0; i < grid_points; ++i) {
    const double t = static_cast<double>(i) / static_cast<double>(grid_points - 1);
    const double g = lo + t * (hi - lo);
    v.grid[i] = g;
    double d = 0.0;
    for (double x : xs) {
      const double z = (g - x) / v.bandwidth;
      d += std::exp(-0.5 * z * z);
    }
    v.density[i] = d / (n * v.bandwidth * std::sqrt(2.0 * 3.14159265358979323846));
  }
  return v;
}

std::string render_violin(const ViolinSummary& v, std::size_t width) {
  std::ostringstream out;
  if (v.grid.empty()) return "(empty)\n";
  const double dmax = *std::max_element(v.density.begin(), v.density.end());
  for (std::size_t i = 0; i < v.grid.size(); ++i) {
    const double frac = dmax > 0.0 ? v.density[i] / dmax : 0.0;
    const auto bar = static_cast<std::size_t>(frac * static_cast<double>(width));
    char mark = ' ';
    if (v.grid[i] <= v.summary.median &&
        (i + 1 == v.grid.size() || v.grid[i + 1] > v.summary.median)) {
      mark = 'o';  // median marker, mirroring the white dot in the paper's plots
    }
    out << mark << ' ';
    for (std::size_t b = 0; b < bar; ++b) out << '#';
    out << "  (" << v.grid[i] << ")\n";
  }
  return out.str();
}

}  // namespace wavetune::util
