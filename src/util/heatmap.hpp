// ASCII heatmap rendering for the Fig. 5 reproduction: best band / halo
// values over a (tsize, dim) grid, printed with axis labels.
#pragma once

#include <functional>
#include <optional>
#include <string>
#include <vector>

namespace wavetune::util {

/// A dense 2-D grid of optional values keyed by labelled axes.
/// x runs across columns, y across rows (row 0 printed last so that the
/// y-axis increases upward, as in the paper's figures).
class Heatmap {
public:
  Heatmap(std::vector<double> x_labels, std::vector<double> y_labels);

  std::size_t width() const { return x_labels_.size(); }
  std::size_t height() const { return y_labels_.size(); }

  void set(std::size_t xi, std::size_t yi, double value);
  std::optional<double> at(std::size_t xi, std::size_t yi) const;

  const std::vector<double>& x_labels() const { return x_labels_; }
  const std::vector<double>& y_labels() const { return y_labels_; }

  /// Renders values numerically in a grid, "." for missing cells.
  std::string render_numeric(const std::string& x_name, const std::string& y_name,
                             int cell_width = 6) const;

  /// Renders with a character ramp " .:-=+*#%@" scaled to [min,max];
  /// custom classifier maps value -> char if provided.
  std::string render_ramp(const std::string& x_name, const std::string& y_name,
                          std::function<char(double)> classify = nullptr) const;

private:
  std::vector<double> x_labels_;
  std::vector<double> y_labels_;
  std::vector<std::optional<double>> cells_;
  std::size_t idx(std::size_t xi, std::size_t yi) const;
};

}  // namespace wavetune::util
