#include "util/logging.hpp"

#include <atomic>
#include <iostream>
#include <mutex>

namespace wavetune::util {

namespace {
std::atomic<LogLevel> g_level{LogLevel::Warn};
std::mutex g_mutex;

const char* level_name(LogLevel level) {
  switch (level) {
    case LogLevel::Debug: return "DEBUG";
    case LogLevel::Info: return "INFO";
    case LogLevel::Warn: return "WARN";
    case LogLevel::Error: return "ERROR";
    case LogLevel::Off: return "OFF";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level, std::memory_order_relaxed); }
LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void log(LogLevel level, const std::string& message) {
  if (level < log_level()) return;
  std::lock_guard<std::mutex> lock(g_mutex);
  std::cerr << '[' << level_name(level) << "] " << message << '\n';
}

}  // namespace wavetune::util
