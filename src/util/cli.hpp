// Minimal command-line flag parsing for the bench/example binaries.
// Supports --key=value, --key value, and bare --flag forms.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace wavetune::util {

class Cli {
public:
  Cli(int argc, const char* const* argv);

  /// True if --name appeared (with or without a value).
  bool has(const std::string& name) const;

  std::optional<std::string> get(const std::string& name) const;
  std::string get_or(const std::string& name, const std::string& def) const;
  long long get_int_or(const std::string& name, long long def) const;
  double get_double_or(const std::string& name, double def) const;
  bool get_bool_or(const std::string& name, bool def) const;

  /// Positional (non-flag) arguments in order.
  const std::vector<std::string>& positional() const { return positional_; }
  const std::string& program() const { return program_; }

private:
  std::string program_;
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
};

}  // namespace wavetune::util
