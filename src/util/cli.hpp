// Minimal command-line flag parsing for the bench/example binaries.
// Supports --key=value, --key value, and bare --flag forms.
//
// Binaries should declare their known flags so a typo like --dims=500
// fails loudly instead of silently falling back to the default (and
// measuring the wrong thing):
//
//   const util::Cli cli = util::Cli::parse_or_exit(argc, argv, {"dim", "system"});
#pragma once

#include <map>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

namespace wavetune::util {

/// Thrown by the strict constructor on flags outside the known set.
class CliError : public std::invalid_argument {
public:
  using std::invalid_argument::invalid_argument;
};

class Cli {
public:
  /// Permissive: accepts any flag (library/test entry point).
  Cli(int argc, const char* const* argv);

  /// Strict: throws CliError on any --flag not in `known`, with a message
  /// listing the known flags. An empty `known` list is permissive.
  Cli(int argc, const char* const* argv, std::vector<std::string> known);

  /// The main() entry point: strict parse that, on an unknown flag,
  /// prints the error plus usage() to stderr and exits(2).
  static Cli parse_or_exit(int argc, const char* const* argv, std::vector<std::string> known);

  /// One-line usage string built from the known flags
  /// ("usage: prog [--dim=V] [--system=V]").
  std::string usage() const;

  /// True if --name appeared (with or without a value).
  bool has(const std::string& name) const;

  std::optional<std::string> get(const std::string& name) const;
  std::string get_or(const std::string& name, const std::string& def) const;
  long long get_int_or(const std::string& name, long long def) const;
  double get_double_or(const std::string& name, double def) const;
  bool get_bool_or(const std::string& name, bool def) const;

  /// Positional (non-flag) arguments in order.
  const std::vector<std::string>& positional() const { return positional_; }
  const std::string& program() const { return program_; }
  const std::vector<std::string>& known() const { return known_; }

private:
  void set_known(std::vector<std::string> known);

  /// Message for the first flag outside `known_`; nullopt when all known
  /// (or when no known set was declared).
  std::optional<std::string> unknown_flag_error() const;

  std::string program_;
  std::map<std::string, std::string> flags_;
  std::vector<std::string> positional_;
  std::vector<std::string> known_;
};

}  // namespace wavetune::util
