// Deterministic pseudo-random number generation for WaveTune.
//
// All stochastic behaviour in the library (training-set sampling, synthetic
// workload jitter, cross-validation splits) flows through `Rng` so that every
// experiment is reproducible from a single seed. The generator is PCG32
// (O'Neill, 2014): small state, excellent statistical quality, and cheap to
// fork into independent streams.
#pragma once

#include <cstdint>
#include <random>
#include <stdexcept>
#include <vector>

namespace wavetune::util {

/// splitmix64 step; used to expand a single user seed into PCG state/stream.
std::uint64_t splitmix64(std::uint64_t& state);

/// PCG32 generator. Satisfies UniformRandomBitGenerator so it can be used
/// with <random> distributions, though the member helpers below are the
/// preferred interface.
class Rng {
public:
  using result_type = std::uint32_t;

  /// Seeds state and stream from a single 64-bit seed via splitmix64.
  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL);

  /// Constructs from explicit PCG state and stream-id (advanced use).
  Rng(std::uint64_t state, std::uint64_t stream);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return 0xffffffffu; }

  /// Next raw 32 bits.
  result_type operator()();

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Uniform real in [lo, hi).
  double uniform_real(double lo = 0.0, double hi = 1.0);

  /// Standard normal via Box-Muller (cached spare value).
  double normal(double mean = 0.0, double stddev = 1.0);

  /// Bernoulli trial with probability p of true.
  bool bernoulli(double p);

  /// Forks an independent stream; the child never correlates with parent.
  Rng fork();

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    if (v.empty()) return;
    for (std::size_t i = v.size() - 1; i > 0; --i) {
      const auto j = static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(i)));
      using std::swap;
      swap(v[i], v[j]);
    }
  }

  /// Samples k distinct indices from [0, n) without replacement.
  std::vector<std::size_t> sample_indices(std::size_t n, std::size_t k);

private:
  std::uint64_t state_;
  std::uint64_t inc_;
  double spare_normal_ = 0.0;
  bool has_spare_ = false;
};

}  // namespace wavetune::util
