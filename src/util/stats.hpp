// Descriptive statistics used throughout the experimental harness:
// summary statistics for Fig. 7 (average-case comparison), violin-plot
// summaries for Fig. 8 (dispersion analysis), and regression metrics shared
// with the ML module.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace wavetune::util {

/// Five-number summary plus moments for a sample.
struct Summary {
  std::size_t count = 0;
  double min = 0.0;
  double q1 = 0.0;
  double median = 0.0;
  double q3 = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double stddev = 0.0;  ///< sample standard deviation (n-1 denominator)
};

double mean(std::span<const double> xs);
/// Sample variance (n-1 denominator); 0 for fewer than 2 points.
double variance(std::span<const double> xs);
double stddev(std::span<const double> xs);
/// Linear-interpolated percentile, p in [0,100]. Throws on empty input.
double percentile(std::span<const double> xs, double p);
double median(std::span<const double> xs);
Summary summarize(std::span<const double> xs);

/// Pearson correlation coefficient; 0 if either side is constant.
double pearson(std::span<const double> xs, std::span<const double> ys);

/// Histogram with equal-width bins over [min, max].
struct Histogram {
  double lo = 0.0;
  double hi = 0.0;
  std::vector<std::size_t> counts;
  double bin_width() const;
};
Histogram histogram(std::span<const double> xs, std::size_t bins);

/// Gaussian kernel-density estimate evaluated on a regular grid — the
/// textual stand-in for the violin plots of paper Fig. 8.
struct ViolinSummary {
  Summary summary;
  std::vector<double> grid;     ///< evaluation points (low..high)
  std::vector<double> density;  ///< KDE value at each grid point
  double bandwidth = 0.0;       ///< Silverman's rule-of-thumb bandwidth
};
ViolinSummary violin(std::span<const double> xs, std::size_t grid_points = 24);

/// Renders a violin summary as a horizontal ASCII density profile.
std::string render_violin(const ViolinSummary& v, std::size_t width = 40);

}  // namespace wavetune::util
