#include "util/rng.hpp"

#include <cmath>

namespace wavetune::util {

std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  const std::uint64_t initstate = splitmix64(sm);
  const std::uint64_t initseq = splitmix64(sm);
  inc_ = (initseq << 1u) | 1u;
  state_ = 0u;
  (*this)();
  state_ += initstate;
  (*this)();
}

Rng::Rng(std::uint64_t state, std::uint64_t stream) {
  inc_ = (stream << 1u) | 1u;
  state_ = 0u;
  (*this)();
  state_ += state;
  (*this)();
}

Rng::result_type Rng::operator()() {
  const std::uint64_t oldstate = state_;
  state_ = oldstate * 6364136223846793005ULL + inc_;
  const auto xorshifted = static_cast<std::uint32_t>(((oldstate >> 18u) ^ oldstate) >> 27u);
  const auto rot = static_cast<std::uint32_t>(oldstate >> 59u);
  return (xorshifted >> rot) | (xorshifted << ((32u - rot) & 31u));
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  if (lo > hi) throw std::invalid_argument("Rng::uniform_int: lo > hi");
  const auto range = static_cast<std::uint64_t>(hi - lo) + 1u;
  if (range == 0) {  // full 64-bit range
    const std::uint64_t v = (static_cast<std::uint64_t>((*this)()) << 32) | (*this)();
    return static_cast<std::int64_t>(v);
  }
  // Lemire-style rejection to remove modulo bias.
  const std::uint64_t threshold = (0u - range) % range;
  for (;;) {
    const std::uint64_t v = (static_cast<std::uint64_t>((*this)()) << 32) | (*this)();
    if (v >= threshold) return lo + static_cast<std::int64_t>(v % range);
  }
}

double Rng::uniform_real(double lo, double hi) {
  const std::uint64_t v = (static_cast<std::uint64_t>((*this)()) << 32) | (*this)();
  const double unit = static_cast<double>(v >> 11) * 0x1.0p-53;
  return lo + unit * (hi - lo);
}

double Rng::normal(double mean, double stddev) {
  if (has_spare_) {
    has_spare_ = false;
    return mean + stddev * spare_normal_;
  }
  double u = 0.0;
  double v = 0.0;
  double s = 0.0;
  do {
    u = uniform_real(-1.0, 1.0);
    v = uniform_real(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  spare_normal_ = v * factor;
  has_spare_ = true;
  return mean + stddev * u * factor;
}

bool Rng::bernoulli(double p) { return uniform_real() < p; }

Rng Rng::fork() {
  const std::uint64_t child_state = (static_cast<std::uint64_t>((*this)()) << 32) | (*this)();
  const std::uint64_t child_stream = (static_cast<std::uint64_t>((*this)()) << 32) | (*this)();
  return Rng(child_state, child_stream);
}

std::vector<std::size_t> Rng::sample_indices(std::size_t n, std::size_t k) {
  if (k > n) throw std::invalid_argument("Rng::sample_indices: k > n");
  std::vector<std::size_t> all(n);
  for (std::size_t i = 0; i < n; ++i) all[i] = i;
  shuffle(all);
  all.resize(k);
  return all;
}

}  // namespace wavetune::util
