// Dependency-counter (dataflow) tile scheduling for the CPU wavefront.
//
// run_tiled_wavefront steps the tile grid one anti-diagonal at a time with
// a full barrier between diagonals: 2M-1 barriers for an MxM tile grid,
// workers idling at the ragged edges of every diagonal, and a tile's
// producer->consumer reuse never staying on one core. Only a tile's north
// and west neighbours actually gate it, so this module schedules tiles by
// readiness instead:
//
//   * every in-band tile carries an atomic remaining-dependency counter
//     (0, 1 or 2: its north and west neighbours clamped to the diagonal
//     band — out-of-band neighbours don't count);
//   * the worker that finishes tile (I,J) decrements the counters of
//     (I+1,J) and (I,J+1); when both become ready it continues INLINE into
//     the east tile (row-major layout: the east tile extends the rows just
//     written, so the continuation consumes cache-hot lines) and pushes
//     the south tile onto its own deque;
//   * idle workers steal pushed tiles from the deques (ThreadPool's
//     work-stealing substrate).
//
// There is no barrier anywhere: the schedule's span is the tile-grid
// critical path, not the sum of per-diagonal maxima. Results are
// bit-identical to run_serial_wavefront for any deterministic kernel —
// every cell is computed exactly once, row-major within its tile, from
// fully-computed neighbours.
#pragma once

#include <cstddef>

#include "cpu/thread_pool.hpp"
#include "cpu/tiled_wavefront.hpp"
#include "sim/hardware.hpp"

namespace wavetune::cpu {

/// CPU wavefront scheduling discipline for the executor's phases 1 and 3.
enum class Scheduler {
  kBarrier,   ///< per-tile-diagonal parallel_for (run_tiled_wavefront)
  kDataflow,  ///< dependency counters + work stealing (this module)
};

/// "barrier" / "dataflow" (stable names used by benches and logs).
const char* scheduler_name(Scheduler s);

/// Functionally executes the region under dataflow scheduling: every cell
/// with i+j in [d_begin, d_end) is visited exactly once, in an order that
/// respects the wavefront dependencies. The LoweredKernel overload is the
/// hot path: each tile body is exactly ONE indirect call over `storage`
/// (see core/lowered.hpp); the segment overload dispatches one
/// type-erased call per clamped row-span; the CellFn overload adapts
/// per-cell callees onto the same traversal. Exceptions thrown by the
/// callee — including from tiles stolen by other workers — propagate to
/// the caller (first one wins); remaining tiles are skipped.
void run_dataflow_wavefront(const TiledRegion& region, ThreadPool& pool,
                            const core::LoweredKernel& kernel, std::byte* storage);
void run_dataflow_wavefront(const TiledRegion& region, ThreadPool& pool,
                            const RowSegmentFn& segment);
void run_dataflow_wavefront(const TiledRegion& region, ThreadPool& pool, const CellFn& cell);

/// Fused multi-grid variant: ONE dependency-counter graph and ONE steal
/// schedule drive `n_grids` independent full-grid storages through the
/// same kernel. Grids iterate INNERMOST inside each tile task, so the
/// per-tile scheduling fixed cost (counter RMWs, deque traffic, pool
/// wakes) is paid once per batch instead of once per grid; each grid's
/// results stay bit-identical to a lone run. n_grids == 1 behaves exactly
/// like the single-storage overload.
void run_dataflow_wavefront(const TiledRegion& region, ThreadPool& pool,
                            const core::LoweredKernel& kernel, std::byte* const* storages,
                            std::size_t n_grids);

/// Strip-local storage-view variant (see run_tiled_wavefront's): the dep
/// graph is built over the region's row window only, and each kernel call
/// addresses the view's row-window buffer while receiving absolute cell
/// coordinates.
void run_dataflow_wavefront(const TiledRegion& region, ThreadPool& pool,
                            const core::LoweredKernel& kernel,
                            const core::StorageView* views, std::size_t n_grids);

/// Simulated time of run_dataflow_wavefront on `cpu`: a critical-path
/// model. Per-tile cost is T^2 elements plus CpuModel::dataflow_dep_ns of
/// dependency bookkeeping (counter updates + deque traffic) — there is no
/// barrier_ns term and no per-diagonal slot rounding. The schedule takes
/// max(critical path, total work / P): the tile-diagonal count times the
/// tile cost when the wavefront's span dominates, the work-conserving
/// bound otherwise.
double dataflow_wavefront_cost_ns(const TiledRegion& region, const sim::CpuModel& cpu,
                                  double tsize_units, std::size_t elem_bytes);

/// Dispatch helpers: one switch point for the executor's CPU phases. The
/// LoweredKernel overload is what the executor uses.
void run_wavefront(Scheduler s, const TiledRegion& region, ThreadPool& pool,
                   const core::LoweredKernel& kernel, std::byte* storage);
void run_wavefront(Scheduler s, const TiledRegion& region, ThreadPool& pool,
                   const core::LoweredKernel& kernel, std::byte* const* storages,
                   std::size_t n_grids);
void run_wavefront(Scheduler s, const TiledRegion& region, ThreadPool& pool,
                   const core::LoweredKernel& kernel, const core::StorageView* views,
                   std::size_t n_grids);
void run_wavefront(Scheduler s, const TiledRegion& region, ThreadPool& pool,
                   const RowSegmentFn& segment);
double wavefront_cost_ns(Scheduler s, const TiledRegion& region, const sim::CpuModel& cpu,
                         double tsize_units, std::size_t elem_bytes);

}  // namespace wavetune::cpu
