// Fixed-size thread pool with a blocking parallel_for.
//
// The CPU phases of the hybrid executor are data-parallel within one tile
// diagonal (all tiles of a tile-diagonal are independent) with a barrier
// between diagonals; parallel_for expresses exactly that. The pool is
// created once per executor and reused across phases, mirroring the
// paper's "threads to control CPU phases".
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace wavetune::cpu {

/// Minimal reusable completion latch. Lives on the caller's stack for the
/// duration of one parallel_for (no heap allocation per call): the final
/// count_down happens entirely under the latch mutex, so once wait()
/// returns no other thread can still be touching the latch and the caller
/// may safely destroy it.
class CompletionLatch {
public:
  explicit CompletionLatch(std::size_t count = 0) : remaining_(count) {}

  /// Re-arms the latch for `count` completions. Only valid when no thread
  /// is waiting or counting down.
  void reset(std::size_t count) {
    std::lock_guard<std::mutex> lock(mutex_);
    remaining_ = count;
  }

  void count_down() {
    std::lock_guard<std::mutex> lock(mutex_);
    if (remaining_ > 0 && --remaining_ == 0) cv_.notify_all();
  }

  void wait() {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [this] { return remaining_ == 0; });
  }

private:
  std::mutex mutex_;
  std::condition_variable cv_;
  std::size_t remaining_;
};

class ThreadPool {
public:
  /// Spawns `workers` threads; 0 picks std::thread::hardware_concurrency()
  /// (at least 1).
  explicit ThreadPool(std::size_t workers = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t worker_count() const { return workers_.size(); }

  /// Runs fn(i) for i in [begin, end) across the pool and blocks until all
  /// iterations finish. Exceptions from fn propagate to the caller (first
  /// one wins). Executes inline when the range is tiny or the pool has a
  /// single worker.
  ///
  /// `grain` batches the dynamic scheduling: workers claim runs of `grain`
  /// consecutive indices per atomic fetch_add, so ranges of many cheap
  /// iterations (e.g. tile-diagonals with many small tiles) don't pay one
  /// atomic RMW per iteration. grain == 0 is treated as 1. Completion is
  /// tracked by a stack-allocated CompletionLatch — no per-call heap
  /// allocation.
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& fn, std::size_t grain = 1);

  /// Fire-and-forget task submission (used by tests to exercise the queue).
  void submit(std::function<void()> task);

  /// Blocks until the task queue is empty and all workers are idle.
  void drain();

private:
  struct Task {
    std::function<void()> fn;
  };

  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<Task> queue_;
  std::mutex mutex_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  std::size_t active_ = 0;
  bool stop_ = false;
};

}  // namespace wavetune::cpu
