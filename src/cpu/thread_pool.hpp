// Work-stealing thread pool with a blocking parallel_for.
//
// Each worker owns a deque: it pushes and pops follow-up work at the
// bottom (LIFO, so a producer's freshly-written data is consumed while
// still cache-hot) and idle workers steal from the top (FIFO, so the
// oldest — usually largest — pending work migrates). A global injection
// queue receives tasks submitted from outside the pool. This is the
// substrate of both scheduling disciplines the CPU phases use:
//
//   * parallel_for: data-parallel range with a barrier at the end (the
//     paper's per-tile-diagonal sweep);
//   * the dataflow tile scheduler (cpu/dataflow_wavefront.hpp): tasks
//     spawn their successors with submit_local and idle workers steal,
//     with no barrier anywhere.
//
// The pool is created once per executor and reused across phases,
// mirroring the paper's "threads to control CPU phases".
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include <atomic>

namespace wavetune::cpu {

/// Minimal reusable completion latch. Lives on the caller's stack for the
/// duration of one parallel_for (no heap allocation per call): the final
/// count_down happens entirely under the latch mutex, so once wait()
/// returns no other thread can still be touching the latch and the caller
/// may safely destroy it.
class CompletionLatch {
public:
  explicit CompletionLatch(std::size_t count = 0) : remaining_(count) {}

  /// Re-arms the latch for `count` completions. Only valid when no thread
  /// is waiting or counting down.
  void reset(std::size_t count) {
    std::lock_guard<std::mutex> lock(mutex_);
    remaining_ = count;
  }

  void count_down() {
    std::lock_guard<std::mutex> lock(mutex_);
    if (remaining_ > 0 && --remaining_ == 0) cv_.notify_all();
  }

  void wait() {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [this] { return remaining_ == 0; });
  }

private:
  std::mutex mutex_;
  std::condition_variable cv_;
  std::size_t remaining_;
};

class ThreadPool {
public:
  /// Spawns `workers` threads; 0 picks std::thread::hardware_concurrency()
  /// (at least 1).
  explicit ThreadPool(std::size_t workers = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t worker_count() const { return workers_.size(); }

  /// Runs fn(i) for i in [begin, end) across the pool and blocks until all
  /// iterations finish. Exceptions from fn propagate to the caller (first
  /// one wins). Executes inline when the range is tiny or the pool has a
  /// single worker.
  ///
  /// `grain` batches the dynamic scheduling: workers claim runs of `grain`
  /// consecutive indices per atomic fetch_add, so ranges of many cheap
  /// iterations (e.g. tile-diagonals with many small tiles) don't pay one
  /// atomic RMW per iteration. grain == 0 is treated as 1. Completion is
  /// tracked by a stack-allocated CompletionLatch — no per-call heap
  /// allocation.
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& fn, std::size_t grain = 1);

  /// Raw per-index callback: a plain function pointer + context.
  using ForFn = void (*)(void* ctx, std::size_t i);

  /// Like parallel_for above, but nothing type-erased is invoked per
  /// index — the per-iteration cost is one indirect call. This is the
  /// variant the lowered-kernel hot loops use (the std::function overload
  /// wraps onto it). Helper TASKS are still std::function (one per
  /// participating worker, not per index).
  void parallel_for(std::size_t begin, std::size_t end, ForFn fn, void* ctx,
                    std::size_t grain = 1);

  /// Fire-and-forget task submission onto the global injection queue.
  /// Tasks must not throw (the schedulers built on top catch internally
  /// and propagate to their caller). Throws std::runtime_error once the
  /// pool is stopping.
  void submit(std::function<void()> task);

  /// Like submit, but when called from one of this pool's worker threads
  /// the task goes to the BOTTOM of that worker's own deque: the worker
  /// continues into it next (LIFO, cache-hot) unless an idle worker steals
  /// it from the top first. From any other thread it behaves as submit().
  void submit_local(std::function<void()> task);

  /// Runs one pending task (global queue first, then stealing from the
  /// worker deques) on the CALLING thread. Returns false when no task was
  /// claimable. Lets a thread blocked on a scheduler's completion help
  /// instead of idling.
  bool try_run_one();

  /// Blocks until every queue (global + all worker deques) is empty and
  /// all workers are idle.
  void drain();

private:
  /// One worker's deque. Owner pushes/pops the bottom (back); thieves take
  /// the top (front) under try_lock so a busy owner never blocks a steal
  /// scan for long.
  struct WorkerQueue {
    std::mutex mutex;
    std::deque<std::function<void()>> tasks;
  };

  void worker_loop(std::size_t index);
  bool pop_local(std::size_t index, std::function<void()>& out);
  bool pop_global(std::function<void()>& out);
  bool try_steal(std::size_t thief, std::function<void()>& out);
  /// Claim bookkeeping shared by every successful pop: the task counts as
  /// active BEFORE it stops counting as queued, so drain() can never
  /// observe the gap.
  void claimed();
  void finished();
  /// Wakes a sleeping worker if any; called after every push.
  void notify_work();

  std::vector<std::unique_ptr<WorkerQueue>> queues_;  // one per worker
  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> global_;
  std::mutex mutex_;  ///< guards global_, stop_, and the sleep/idle CVs
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  std::atomic<std::size_t> queued_{0};   ///< pushed, not yet claimed
  std::atomic<std::size_t> active_{0};   ///< claimed, still executing
  std::atomic<std::size_t> sleepers_{0}; ///< workers waiting on cv_task_
  bool stop_ = false;
};

}  // namespace wavetune::cpu
