// Fixed-size thread pool with a blocking parallel_for.
//
// The CPU phases of the hybrid executor are data-parallel within one tile
// diagonal (all tiles of a tile-diagonal are independent) with a barrier
// between diagonals; parallel_for expresses exactly that. The pool is
// created once per executor and reused across phases, mirroring the
// paper's "threads to control CPU phases".
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace wavetune::cpu {

class ThreadPool {
public:
  /// Spawns `workers` threads; 0 picks std::thread::hardware_concurrency()
  /// (at least 1).
  explicit ThreadPool(std::size_t workers = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t worker_count() const { return workers_.size(); }

  /// Runs fn(i) for i in [begin, end) across the pool and blocks until all
  /// iterations finish. Exceptions from fn propagate to the caller (first
  /// one wins). Executes inline when the range is tiny or the pool has a
  /// single worker.
  void parallel_for(std::size_t begin, std::size_t end,
                    const std::function<void(std::size_t)>& fn);

  /// Fire-and-forget task submission (used by tests to exercise the queue).
  void submit(std::function<void()> task);

  /// Blocks until the task queue is empty and all workers are idle.
  void drain();

private:
  struct Task {
    std::function<void()> fn;
  };

  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<Task> queue_;
  std::mutex mutex_;
  std::condition_variable cv_task_;
  std::condition_variable cv_idle_;
  std::size_t active_ = 0;
  bool stop_ = false;
};

}  // namespace wavetune::cpu
