#include "cpu/rect_wavefront.hpp"

#include <algorithm>
#include <stdexcept>

namespace wavetune::cpu {

std::size_t rect_num_diagonals(std::size_t rows, std::size_t cols) {
  return (rows == 0 || cols == 0) ? 0 : rows + cols - 1;
}

std::size_t rect_diag_len(std::size_t rows, std::size_t cols, std::size_t d) {
  if (d >= rect_num_diagonals(rows, cols)) return 0;
  return std::min({d + 1, rows, cols, rows + cols - 1 - d});
}

std::size_t rect_diag_row_lo(std::size_t rows, std::size_t cols, std::size_t d) {
  (void)rows;
  return d >= cols ? d - cols + 1 : 0;
}

std::size_t rect_diag_row_hi(std::size_t rows, std::size_t cols, std::size_t d) {
  (void)cols;
  return std::min(d, rows - 1);
}

std::size_t RectRegion::cell_count() const {
  std::size_t n = 0;
  for (std::size_t d = d_begin; d < d_end; ++d) n += rect_diag_len(rows, cols, d);
  return n;
}

void RectRegion::validate() const {
  if (rows == 0 || cols == 0) throw std::invalid_argument("RectRegion: empty grid");
  if (tile == 0) throw std::invalid_argument("RectRegion: tile == 0");
  if (d_begin > d_end) throw std::invalid_argument("RectRegion: d_begin > d_end");
  if (d_end > rect_num_diagonals(rows, cols)) {
    throw std::invalid_argument("RectRegion: d_end beyond last diagonal");
  }
}

void run_serial_wavefront(const RectRegion& region, const CellFn& cell) {
  region.validate();
  for (std::size_t i = 0; i < region.rows; ++i) {
    if (region.d_end <= i) break;
    const std::size_t j_lo = region.d_begin > i ? region.d_begin - i : 0;
    const std::size_t j_hi = std::min(region.cols, region.d_end - i);
    for (std::size_t j = j_lo; j < j_hi; ++j) cell(i, j);
  }
}

void run_tiled_wavefront(const RectRegion& region, ThreadPool& pool, const CellFn& cell) {
  region.validate();
  if (region.d_begin == region.d_end) return;
  const std::size_t T = region.tile;
  const std::size_t MR = (region.rows + T - 1) / T;  // tile rows
  const std::size_t MC = (region.cols + T - 1) / T;  // tile cols

  for (std::size_t k = 0; k < MR + MC - 1; ++k) {
    const std::size_t span_lo = k * T;
    const std::size_t span_hi = (k + 2) * T - 2;  // inclusive
    if (span_lo >= region.d_end || span_hi < region.d_begin) continue;

    // Tiles on tile-diagonal k: I in [max(0, k-MC+1), min(k, MR-1)].
    const std::size_t i_lo = k >= MC ? k - MC + 1 : 0;
    const std::size_t i_hi = std::min(k, MR - 1);
    if (i_lo > i_hi) continue;
    pool.parallel_for(i_lo, i_hi + 1, [&](std::size_t I) {
      const std::size_t J = k - I;
      const std::size_t row_hi = std::min((I + 1) * T, region.rows);
      const std::size_t col_hi = std::min((J + 1) * T, region.cols);
      for (std::size_t i = I * T; i < row_hi; ++i) {
        for (std::size_t j = J * T; j < col_hi; ++j) {
          const std::size_t d = i + j;
          if (d >= region.d_begin && d < region.d_end) cell(i, j);
        }
      }
    });
  }
}

double tiled_wavefront_cost_ns(const RectRegion& region, const sim::CpuModel& cpu,
                               double tsize_units, std::size_t elem_bytes) {
  region.validate();
  if (region.d_begin == region.d_end) return 0.0;
  const std::size_t T = region.tile;
  const std::size_t MR = (region.rows + T - 1) / T;
  const std::size_t MC = (region.cols + T - 1) / T;
  const double P = cpu.effective_parallelism();
  const double tile_cost = static_cast<double>(T) * static_cast<double>(T) *
                               cpu.tiled_element_ns(tsize_units, elem_bytes, T) +
                           cpu.tile_sched_ns;

  double total = 0.0;
  for (std::size_t k = 0; k < MR + MC - 1; ++k) {
    const std::size_t span_lo = k * T;
    const std::size_t span_hi = (k + 2) * T - 2;
    if (span_lo >= region.d_end || span_hi < region.d_begin) continue;
    const std::size_t n_k = std::min({k + 1, MR, MC, MR + MC - 1 - k});
    const double slots = std::max(1.0, static_cast<double>(n_k) / P);
    total += slots * tile_cost + cpu.barrier_ns;
  }
  return total;
}

double serial_wavefront_cost_ns(const RectRegion& region, const sim::CpuModel& cpu,
                                double tsize_units, std::size_t elem_bytes) {
  region.validate();
  return static_cast<double>(region.cell_count()) * cpu.element_ns(tsize_units, elem_bytes);
}

}  // namespace wavetune::cpu
