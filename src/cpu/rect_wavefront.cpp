#include "cpu/rect_wavefront.hpp"

#include <algorithm>
#include <stdexcept>

namespace wavetune::cpu {

std::size_t rect_num_diagonals(std::size_t rows, std::size_t cols) {
  return (rows == 0 || cols == 0) ? 0 : rows + cols - 1;
}

std::size_t rect_diag_len(std::size_t rows, std::size_t cols, std::size_t d) {
  if (d >= rect_num_diagonals(rows, cols)) return 0;
  return std::min({d + 1, rows, cols, rows + cols - 1 - d});
}

std::size_t rect_diag_row_lo(std::size_t rows, std::size_t cols, std::size_t d) {
  (void)rows;
  return d >= cols ? d - cols + 1 : 0;
}

std::size_t rect_diag_row_hi(std::size_t rows, std::size_t cols, std::size_t d) {
  (void)cols;
  return std::min(d, rows - 1);
}

std::size_t RectRegion::cell_count() const {
  std::size_t n = 0;
  for (std::size_t d = d_begin; d < d_end; ++d) n += rect_diag_len(rows, cols, d);
  return n;
}

void RectRegion::validate() const {
  if (rows == 0 || cols == 0) throw std::invalid_argument("RectRegion: empty grid");
  if (tile == 0) throw std::invalid_argument("RectRegion: tile == 0");
  if (d_begin > d_end) throw std::invalid_argument("RectRegion: d_begin > d_end");
  if (d_end > rect_num_diagonals(rows, cols)) {
    throw std::invalid_argument("RectRegion: d_end beyond last diagonal");
  }
}

void run_serial_wavefront(const RectRegion& region, const RowSegmentFn& segment) {
  region.validate();
  for (std::size_t i = 0; i < region.rows; ++i) {
    if (region.d_end <= i) break;
    const auto [j_lo, j_hi] = row_band_span(i, region.d_begin, region.d_end, 0, region.cols);
    if (j_lo < j_hi) segment(i, j_lo, j_hi);
  }
}

void run_serial_wavefront(const RectRegion& region, const CellFn& cell) {
  run_serial_wavefront(region, per_cell_adapter(cell));
}

void run_tiled_wavefront(const RectRegion& region, ThreadPool& pool,
                         const RowSegmentFn& segment) {
  region.validate();
  if (region.d_begin == region.d_end) return;
  const std::size_t T = region.tile;
  const std::size_t MR = (region.rows + T - 1) / T;  // tile rows
  const std::size_t MC = (region.cols + T - 1) / T;  // tile cols

  for (std::size_t k = 0; k < MR + MC - 1; ++k) {
    const std::size_t span_lo = k * T;
    const std::size_t span_hi = (k + 2) * T - 2;  // inclusive
    if (span_lo >= region.d_end || span_hi < region.d_begin) continue;

    // Tiles on tile-diagonal k: I in [max(0, k-MC+1), min(k, MR-1)].
    const std::size_t i_lo = k >= MC ? k - MC + 1 : 0;
    const std::size_t i_hi = std::min(k, MR - 1);
    if (i_lo > i_hi) continue;
    const std::size_t grain = tile_grain(i_hi - i_lo + 1, T, pool.worker_count());
    pool.parallel_for(
        i_lo, i_hi + 1,
        [&](std::size_t I) {
          const std::size_t J = k - I;
          const std::size_t row_hi = std::min((I + 1) * T, region.rows);
          const std::size_t col_lo = J * T;
          const std::size_t col_hi = std::min((J + 1) * T, region.cols);
          // One clamped span per tile row — no per-cell band branch.
          for (std::size_t i = I * T; i < row_hi; ++i) {
            if (region.d_end <= i) break;
            const auto [j_lo, j_hi] =
                row_band_span(i, region.d_begin, region.d_end, col_lo, col_hi);
            if (j_lo < j_hi) segment(i, j_lo, j_hi);
          }
        },
        grain);
  }
}

void run_tiled_wavefront(const RectRegion& region, ThreadPool& pool, const CellFn& cell) {
  run_tiled_wavefront(region, pool, per_cell_adapter(cell));
}

double tiled_wavefront_cost_ns(const RectRegion& region, const sim::CpuModel& cpu,
                               double tsize_units, std::size_t elem_bytes) {
  region.validate();
  if (region.d_begin == region.d_end) return 0.0;
  const std::size_t T = region.tile;
  const std::size_t MR = (region.rows + T - 1) / T;
  const std::size_t MC = (region.cols + T - 1) / T;
  const double P = cpu.effective_parallelism();
  // Same per-tile structure as the square model: T^2 elements, one
  // lowered-kernel dispatch, one claim/enqueue.
  const double tile_cost = static_cast<double>(T) * static_cast<double>(T) *
                               cpu.tiled_element_ns(tsize_units, elem_bytes, T) +
                           cpu.kernel_dispatch_ns + cpu.tile_sched_ns;

  double total = 0.0;
  for (std::size_t k = 0; k < MR + MC - 1; ++k) {
    const std::size_t span_lo = k * T;
    const std::size_t span_hi = (k + 2) * T - 2;
    if (span_lo >= region.d_end || span_hi < region.d_begin) continue;
    const std::size_t n_k = std::min({k + 1, MR, MC, MR + MC - 1 - k});
    const double slots = std::max(1.0, static_cast<double>(n_k) / P);
    total += slots * tile_cost + cpu.barrier_ns;
  }
  return total;
}

double serial_wavefront_cost_ns(const RectRegion& region, const sim::CpuModel& cpu,
                                double tsize_units, std::size_t elem_bytes) {
  region.validate();
  return static_cast<double>(region.cell_count()) * cpu.element_ns(tsize_units, elem_bytes);
}

}  // namespace wavetune::cpu
