#include "cpu/dataflow_wavefront.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <exception>
#include <mutex>
#include <vector>

#include "core/diag.hpp"
#include "fault/injector.hpp"

namespace wavetune::cpu {

namespace {

/// Contiguous range of tile-diagonals k (tile (I,J) is on k = I+J) whose
/// global-diagonal span [k*T, (k+2)*T - 2] intersects [d_begin, d_end).
/// Mirrors the inclusion test of run_tiled_wavefront exactly, so both
/// schedulers visit the same tile set.
struct TileDiagRange {
  std::size_t k_lo = 1;
  std::size_t k_hi = 0;  // empty when k_lo > k_hi
};

TileDiagRange tile_diag_range(const TiledRegion& region, std::size_t M) {
  const std::size_t T = region.tile;
  TileDiagRange r;
  if (region.d_begin >= region.d_end) return r;
  // Last k with k*T < d_end.
  r.k_hi = std::min(2 * M - 2, (region.d_end - 1) / T);
  // First k with (k+2)*T - 2 >= d_begin, i.e. (k+2)*T >= d_begin + 2.
  const std::size_t need = region.d_begin + 2;
  r.k_lo = need <= 2 * T ? 0 : (need - 2 * T + T - 1) / T;
  return r;
}

// Tile rows on a tile-diagonal follow the same algebra as cell rows on a
// cell diagonal of an MxM grid: core::diag_row_lo / core::diag_row_hi are
// the single definition (used with dim = M).

/// Shared state of one dataflow run. Lives on the caller's stack: the
/// caller blocks until every tile counted down `remaining`, and the final
/// decrement publishes completion under `done_mutex`, so the frame
/// strictly outlives every worker's access (the finishing thread can have
/// no ready successor — every other tile already completed — so it
/// touches nothing of the state after the notify).
struct DataflowState {
  const TiledRegion* region = nullptr;
  ThreadPool* pool = nullptr;
  /// Tile dispatch: exactly one of `lowered` (hot path — one indirect
  /// call per tile per grid over `storages`) or `segment` (legacy
  /// type-erased per-row path) is set. `storages` points at n_grids
  /// independent full-grid byte arrays; the fused batching path drives
  /// several grids through ONE dep-counter graph by iterating them
  /// innermost in execute(). The single-grid entry points pass a
  /// 1-element array living on their own (blocking) stack frame.
  const core::LoweredKernel* lowered = nullptr;
  const core::StorageView* views = nullptr;
  std::size_t n_grids = 1;
  const RowSegmentFn* segment = nullptr;
  std::size_t M = 0;  ///< tiles per side
  TileDiagRange range;
  /// Tile-row window [I_lo, I_hi) of the region's row window: tiles whose
  /// rows fall entirely outside the strip are not in the dep graph at all.
  std::size_t I_lo = 0;
  std::size_t I_hi = 0;
  /// deps is sized to exactly the in-range tiles (not M*M): diag_offset[d]
  /// is the index of the first tile of tile-diagonal range.k_lo + d, and a
  /// tile's slot is its offset within its diagonal. Keeps narrow band
  /// slices (phase-3 regions, tiny tiles) from paying an O(M^2)
  /// allocate-and-zero per run.
  std::vector<std::size_t> diag_offset;
  std::vector<std::atomic<unsigned char>> deps;
  std::atomic<bool> failed{false};
  std::exception_ptr error;
  std::mutex error_mutex;
  /// Completion: an atomic countdown on the per-tile hot path (no mutex
  /// per tile), one CV round-trip at the very end.
  std::atomic<std::size_t> remaining{0};
  std::mutex done_mutex;
  std::condition_variable done_cv;
  bool done = false;

  /// Counts `n` tiles finished. Called once per continuation CHAIN, not
  /// per tile: the shared countdown is the one cache line every worker
  /// writes, so inline-continued tiles batch their decrements and only
  /// the chain end pays the contended RMW.
  void tiles_done(std::size_t n) {
    if (remaining.fetch_sub(n, std::memory_order_acq_rel) == n) {
      std::lock_guard<std::mutex> lock(done_mutex);
      done = true;
      done_cv.notify_all();
    }
  }

  void wait_done() {
    std::unique_lock<std::mutex> lock(done_mutex);
    done_cv.wait(lock, [this] { return done; });
  }

  bool in_set(std::size_t I, std::size_t J) const {
    if (I >= M || J >= M) return false;
    if (I < I_lo || I >= I_hi) return false;
    const std::size_t k = I + J;
    return k >= range.k_lo && k <= range.k_hi;
  }

  /// First in-set tile row of tile-diagonal k (row window clamped).
  std::size_t first_row(std::size_t k) const {
    return std::max(core::diag_row_lo(M, k), I_lo);
  }

  /// Flat deps slot of in-set tile (I,J).
  std::size_t dep_index(std::size_t I, std::size_t J) const {
    const std::size_t k = I + J;
    return diag_offset[k - range.k_lo] + (I - first_row(k));
  }

  /// Computes the cells of tile (I,J): row-major, each row's column run
  /// clamped to the diagonal band (and the strip's row window) up front —
  /// identical traversal to run_tiled_wavefront, hence identical results.
  void execute(std::size_t I, std::size_t J) const {
    const std::size_t dim = region->dim;
    const std::size_t T = region->tile;
    const std::size_t row_lo = std::max(I * T, region->row_begin);
    const std::size_t row_hi = std::min({I * T + T, dim, region->row_hi()});  // exclusive
    const std::size_t col_lo = J * T;
    const std::size_t col_hi = std::min(col_lo + T, dim);
    if (lowered) {
      // One indirect call per tile per grid; clamping and the row loop
      // live inside the lowered dispatch. Grids iterate innermost so the
      // whole batch shares one counter graph and one steal schedule —
      // each call touches only its own storage, so results per grid are
      // bit-identical to a lone run.
      for (std::size_t g = 0; g < n_grids; ++g) {
        lowered->tile_local(views[g].base, views[g].base_row, row_lo, row_hi, col_lo, col_hi,
                            region->d_begin, region->d_end);
      }
      return;
    }
    for (std::size_t i = row_lo; i < row_hi; ++i) {
      if (region->d_end <= i) break;
      const auto [j_lo, j_hi] = row_band_span(i, region->d_begin, region->d_end, col_lo, col_hi);
      if (j_lo < j_hi) (*segment)(i, j_lo, j_hi);
    }
  }

  /// Decrements (I,J)'s counter; true when it just became ready. The
  /// acq_rel RMW is the happens-before edge from producer to consumer:
  /// the worker whose decrement reaches zero has acquired every other
  /// producer's release, so the tile reads fully-written neighbour cells.
  bool release_dep(std::size_t I, std::size_t J) {
    if (!in_set(I, J)) return false;
    return deps[dep_index(I, J)].fetch_sub(1, std::memory_order_acq_rel) == 1;
  }

  void record_error() {
    failed.store(true, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(error_mutex);
    if (!error) error = std::current_exception();
  }

  /// Executes tile (I,J), releases its successors, and continues inline
  /// into one tile it just made ready. After a failure the remaining
  /// tiles still flow through the counters (so the latch always resolves)
  /// but skip their kernels.
  void run_tile(std::size_t I, std::size_t J) {
    std::size_t completed = 0;
    for (;;) {
      if (!failed.load(std::memory_order_relaxed)) {
        try {
          execute(I, J);
        } catch (...) {
          record_error();
        }
      }
      const bool east = release_dep(I, J + 1);
      const bool south = release_dep(I + 1, J);
      ++completed;
      if (east && south) {
        // Continue east (the rows just written extend into it — cache-hot
        // in a row-major grid); push south onto this worker's own deque
        // for an idle worker to steal. The closure packs the tile into
        // one index so it fits std::function's small-buffer storage.
        DataflowState* self = this;
        const std::size_t idx = (I + 1) * M + J;
        try {
          fault::check(fault::Site::kDataflowSpawn);
          pool->submit_local([self, idx] {
            // Entry of a spawned/stolen tile task: an injected fault here
            // models a steal that lands on a poisoned worker. The tile
            // still drains through the counters (kernels are skipped once
            // `failed` is set), so the completion latch always resolves.
            try {
              fault::check(fault::Site::kDataflowSteal);
            } catch (...) {
              self->record_error();
            }
            self->run_tile(idx / self->M, idx % self->M);
          });
        } catch (...) {
          // Queueing failed (allocation, pool stopping, injected spawn
          // fault): the south subtree must still drain or the latch never
          // resolves. Run it on this thread; depth is bounded by the
          // tile-grid side.
          record_error();
          run_tile(I + 1, J);
        }
        ++J;
      } else if (east) {
        ++J;
      } else if (south) {
        ++I;
      } else {
        break;
      }
    }
    tiles_done(completed);
  }
};

/// In-order inline sweep for degenerate cases (single worker, or so few
/// tiles that scheduling can't pay): same tile order as the barriered
/// path's serial fallback.
void run_inline(DataflowState& state) {
  const TileDiagRange& range = state.range;
  for (std::size_t k = range.k_lo; k <= range.k_hi; ++k) {
    const std::size_t i_hi = std::min(core::diag_row_hi(state.M, k), state.I_hi - 1);
    for (std::size_t I = state.first_row(k); I <= i_hi; ++I) {
      state.execute(I, k - I);
    }
  }
}

/// Shared body of the LoweredKernel and RowSegmentFn entry points: `state`
/// arrives with its dispatch fields (lowered/storage or segment) already
/// set; everything else is initialised here.
void run_dataflow_impl(const TiledRegion& region, ThreadPool& pool, DataflowState& state) {
  region.validate();
  if (region.d_begin == region.d_end) return;
  const std::size_t T = region.tile;
  const std::size_t M = (region.dim + T - 1) / T;
  const TileDiagRange range = tile_diag_range(region, M);
  if (range.k_lo > range.k_hi) return;

  state.region = &region;
  state.pool = &pool;
  state.M = M;
  state.range = range;
  state.I_lo = region.row_begin / T;
  state.I_hi = (region.row_hi() + T - 1) / T;

  std::vector<std::size_t> diag_offset;
  diag_offset.reserve(range.k_hi - range.k_lo + 1);
  std::size_t n_tiles = 0;
  for (std::size_t k = range.k_lo; k <= range.k_hi; ++k) {
    diag_offset.push_back(n_tiles);
    const std::size_t i_lo = state.first_row(k);
    const std::size_t i_hi = std::min(core::diag_row_hi(M, k), state.I_hi - 1);
    if (i_lo <= i_hi) n_tiles += i_hi - i_lo + 1;
  }
  if (n_tiles == 0) return;
  if (pool.worker_count() <= 1 || n_tiles <= 2) {
    run_inline(state);  // counters stay untouched
    return;
  }

  state.diag_offset = std::move(diag_offset);
  state.deps = std::vector<std::atomic<unsigned char>>(n_tiles);
  // Initial ready set: tiles whose in-set gate count is zero. Without a
  // row window that is exactly the first in-set diagonal; a strip window
  // can also expose later-diagonal tiles whose north gate was clipped
  // away (e.g. the window's top row mid-band), so readiness is computed
  // from the same in_set() the release path uses.
  std::vector<std::size_t> ready;
  for (std::size_t k = range.k_lo; k <= range.k_hi; ++k) {
    const std::size_t i_hi = std::min(core::diag_row_hi(M, k), state.I_hi - 1);
    for (std::size_t I = state.first_row(k); I <= i_hi; ++I) {
      const std::size_t J = k - I;
      // North/west neighbours sit on tile-diagonal k-1; they gate this
      // tile only when in the scheduled set (band AND row window).
      const unsigned char d = static_cast<unsigned char>(
          (I > 0 && state.in_set(I - 1, J) ? 1 : 0) +
          (J > 0 && state.in_set(I, J - 1) ? 1 : 0));
      state.deps[state.dep_index(I, J)].store(d, std::memory_order_relaxed);
      if (d == 0) ready.push_back(I * M + J);
    }
  }
  state.remaining.store(n_tiles, std::memory_order_relaxed);

  // Seed: queue all ready tiles but one for the workers, run one here,
  // then help until no task is claimable, then wait out the stragglers.
  DataflowState* sp = &state;
  for (std::size_t r = 1; r < ready.size(); ++r) {
    const std::size_t idx = ready[r];
    try {
      fault::check(fault::Site::kDataflowSpawn);
      pool.submit([sp, idx] {
        try {
          fault::check(fault::Site::kDataflowSteal);
        } catch (...) {
          sp->record_error();
        }
        sp->run_tile(idx / sp->M, idx % sp->M);
      });
    } catch (...) {
      sp->record_error();
      sp->run_tile(idx / M, idx % M);
    }
  }
  state.run_tile(ready[0] / M, ready[0] % M);
  while (pool.try_run_one()) {
  }
  state.wait_done();
  if (state.error) std::rethrow_exception(state.error);
}

}  // namespace

const char* scheduler_name(Scheduler s) {
  return s == Scheduler::kDataflow ? "dataflow" : "barrier";
}

void run_dataflow_wavefront(const TiledRegion& region, ThreadPool& pool,
                            const core::LoweredKernel& kernel, std::byte* storage) {
  // 1-element views array on this frame: run_dataflow_impl blocks until
  // every tile drained, so the frame outlives all worker access.
  const core::StorageView views[1] = {{storage, 0}};
  DataflowState state;
  state.lowered = &kernel;
  state.views = views;
  state.n_grids = 1;
  run_dataflow_impl(region, pool, state);
}

void run_dataflow_wavefront(const TiledRegion& region, ThreadPool& pool,
                            const core::LoweredKernel& kernel,
                            const core::StorageView* views, std::size_t n_grids) {
  if (n_grids == 0) throw std::invalid_argument("run_dataflow_wavefront: n_grids == 0");
  DataflowState state;
  state.lowered = &kernel;
  state.views = views;
  state.n_grids = n_grids;
  run_dataflow_impl(region, pool, state);
}

void run_dataflow_wavefront(const TiledRegion& region, ThreadPool& pool,
                            const core::LoweredKernel& kernel, std::byte* const* storages,
                            std::size_t n_grids) {
  if (n_grids == 0) throw std::invalid_argument("run_dataflow_wavefront: n_grids == 0");
  std::vector<core::StorageView> views(n_grids);
  for (std::size_t g = 0; g < n_grids; ++g) views[g] = {storages[g], 0};
  run_dataflow_wavefront(region, pool, kernel, views.data(), n_grids);
}

void run_dataflow_wavefront(const TiledRegion& region, ThreadPool& pool,
                            const RowSegmentFn& segment) {
  DataflowState state;
  state.segment = &segment;
  run_dataflow_impl(region, pool, state);
}

void run_dataflow_wavefront(const TiledRegion& region, ThreadPool& pool, const CellFn& cell) {
  run_dataflow_wavefront(region, pool, per_cell_adapter(cell));
}

double dataflow_wavefront_cost_ns(const TiledRegion& region, const sim::CpuModel& cpu,
                                  double tsize_units, std::size_t elem_bytes) {
  region.validate();
  if (region.d_begin == region.d_end) return 0.0;
  const std::size_t T = region.tile;
  const std::size_t M = (region.dim + T - 1) / T;
  const TileDiagRange range = tile_diag_range(region, M);
  if (range.k_lo > range.k_hi) return 0.0;

  const std::size_t I_lo = region.row_begin / T;
  const std::size_t I_hi = (region.row_hi() + T - 1) / T;
  std::size_t n_tiles = 0;
  std::size_t n_nonempty = 0;
  for (std::size_t k = range.k_lo; k <= range.k_hi; ++k) {
    const std::size_t i_lo = std::max(core::diag_row_lo(M, k), I_lo);
    const std::size_t i_hi = std::min(core::diag_row_hi(M, k), I_hi - 1);
    if (i_lo > i_hi) continue;
    n_tiles += i_hi - i_lo + 1;
    ++n_nonempty;
  }
  if (n_tiles == 0) return 0.0;
  // Per tile: T^2 elements, one lowered-kernel dispatch, and the
  // dependency-counter bookkeeping (what a tile pays instead of
  // tile_sched_ns + its share of barrier_ns).
  const double tile_cost = static_cast<double>(T) * static_cast<double>(T) *
                               cpu.tiled_element_ns(tsize_units, elem_bytes, T) +
                           cpu.kernel_dispatch_ns + cpu.dataflow_dep_ns;
  const double n_diags = static_cast<double>(n_nonempty);
  const double P = cpu.effective_parallelism();
  // Greedy-scheduling bound: the longer of the critical path (one tile
  // per tile-diagonal, strictly sequential) and the work-conserving bound
  // (all tiles spread over P core-equivalents). No barrier_ns anywhere.
  const double critical = n_diags * tile_cost;
  const double work = static_cast<double>(n_tiles) * tile_cost / P;
  return std::max(critical, work);
}

void run_wavefront(Scheduler s, const TiledRegion& region, ThreadPool& pool,
                   const core::LoweredKernel& kernel, std::byte* storage) {
  if (s == Scheduler::kDataflow) {
    run_dataflow_wavefront(region, pool, kernel, storage);
  } else {
    run_tiled_wavefront(region, pool, kernel, storage);
  }
}

void run_wavefront(Scheduler s, const TiledRegion& region, ThreadPool& pool,
                   const core::LoweredKernel& kernel, std::byte* const* storages,
                   std::size_t n_grids) {
  if (s == Scheduler::kDataflow) {
    run_dataflow_wavefront(region, pool, kernel, storages, n_grids);
  } else {
    run_tiled_wavefront(region, pool, kernel, storages, n_grids);
  }
}

void run_wavefront(Scheduler s, const TiledRegion& region, ThreadPool& pool,
                   const core::LoweredKernel& kernel, const core::StorageView* views,
                   std::size_t n_grids) {
  if (s == Scheduler::kDataflow) {
    run_dataflow_wavefront(region, pool, kernel, views, n_grids);
  } else {
    run_tiled_wavefront(region, pool, kernel, views, n_grids);
  }
}

void run_wavefront(Scheduler s, const TiledRegion& region, ThreadPool& pool,
                   const RowSegmentFn& segment) {
  if (s == Scheduler::kDataflow) {
    run_dataflow_wavefront(region, pool, segment);
  } else {
    run_tiled_wavefront(region, pool, segment);
  }
}

double wavefront_cost_ns(Scheduler s, const TiledRegion& region, const sim::CpuModel& cpu,
                         double tsize_units, std::size_t elem_bytes) {
  return s == Scheduler::kDataflow
             ? dataflow_wavefront_cost_ns(region, cpu, tsize_units, elem_bytes)
             : tiled_wavefront_cost_ns(region, cpu, tsize_units, elem_bytes);
}

}  // namespace wavetune::cpu
