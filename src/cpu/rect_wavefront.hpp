// Rectangular (rows x cols) wavefront execution — lifting the paper's
// simplifying restriction: "For simplicity we assume square arrays, but
// this restriction could be lifted straightforwardly" (§1). This module
// lifts it at the pattern level: serial and tiled-parallel execution plus
// the CPU cost model for arbitrary rectangles. (The hybrid GPU scheduler
// keeps the paper's square instances; see DESIGN.md.)
#pragma once

#include <cstddef>

#include "cpu/thread_pool.hpp"
#include "cpu/tiled_wavefront.hpp"  // CellFn
#include "sim/hardware.hpp"

namespace wavetune::cpu {

/// Diagonal geometry of a rows x cols grid: diagonal d holds the cells
/// (i, j) with i + j == d; there are rows + cols - 1 diagonals and the
/// maximal parallelism min(rows, cols) is sustained on the plateau
/// between diagonals min-1 and max-1.
std::size_t rect_num_diagonals(std::size_t rows, std::size_t cols);
std::size_t rect_diag_len(std::size_t rows, std::size_t cols, std::size_t d);
std::size_t rect_diag_row_lo(std::size_t rows, std::size_t cols, std::size_t d);
std::size_t rect_diag_row_hi(std::size_t rows, std::size_t cols, std::size_t d);

/// A band of diagonals [d_begin, d_end) of a rows x cols grid, executed
/// with square tiles of side `tile`.
struct RectRegion {
  std::size_t rows = 0;
  std::size_t cols = 0;
  std::size_t d_begin = 0;
  std::size_t d_end = 0;
  std::size_t tile = 1;

  std::size_t cell_count() const;
  void validate() const;
};

/// Sequential reference (row-major order respects the dependencies). The
/// RowSegmentFn overload dispatches one call per clamped row-span.
void run_serial_wavefront(const RectRegion& region, const RowSegmentFn& segment);
void run_serial_wavefront(const RectRegion& region, const CellFn& cell);

/// Tiled parallel execution: tiles of one tile-diagonal run concurrently,
/// with a barrier between tile-diagonals — the square algorithm
/// generalised to a rectangular tile grid. The RowSegmentFn overload is
/// the batched native path (one call per clamped tile-row span).
void run_tiled_wavefront(const RectRegion& region, ThreadPool& pool,
                         const RowSegmentFn& segment);
void run_tiled_wavefront(const RectRegion& region, ThreadPool& pool, const CellFn& cell);

/// CPU cost model for the tiled rectangular execution (same structure as
/// the square tiled_wavefront_cost_ns).
double tiled_wavefront_cost_ns(const RectRegion& region, const sim::CpuModel& cpu,
                               double tsize_units, std::size_t elem_bytes);

/// Sequential baseline cost over the region.
double serial_wavefront_cost_ns(const RectRegion& region, const sim::CpuModel& cpu,
                                double tsize_units, std::size_t elem_bytes);

}  // namespace wavetune::cpu
