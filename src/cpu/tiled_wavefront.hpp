// Tiled parallel wavefront execution on the multicore CPU.
//
// The grid is partitioned into TxT tiles; tile (I,J) depends on its west,
// north and north-west neighbour tiles, so tiles on the same tile-diagonal
// (I+J = k) are independent and run in parallel, with a barrier between
// successive tile-diagonals. Within a tile, cells are computed row-major,
// which respects the cell-level dependencies and maximises cache reuse —
// the optimization the paper's cpu-tile parameter controls.
//
// The module operates on an abstract "compute cell (i,j)" callback plus a
// diagonal range, so the hybrid executor can use it for phases 1 and 3 and
// tests can drive it with any recurrence. The diagonal-geometry algebra
// comes from core/diag.hpp — the single definition shared with the GPU
// partitioner and the cost model.
#pragma once

#include <algorithm>
#include <cstddef>
#include <functional>
#include <utility>

#include "core/lowered.hpp"
#include "cpu/thread_pool.hpp"
#include "sim/hardware.hpp"

namespace wavetune::cpu {

/// Computes the value of cell (i, j); the callee reads whatever neighbour
/// state it needs. Must be safe to call concurrently for cells on the same
/// diagonal.
using CellFn = std::function<void(std::size_t i, std::size_t j)>;

/// Computes the contiguous run of cells (i, j) for j in [j_begin, j_end)
/// in one call — the batched counterpart of CellFn that the hot loops
/// dispatch (one call per clamped row-span instead of one per cell). Must
/// be safe to call concurrently for segments of independent tiles.
using RowSegmentFn = std::function<void(std::size_t i, std::size_t j_begin, std::size_t j_end)>;

/// Adapts a per-cell callee onto the batched traversal. Captures `cell` by
/// reference: the adapter must not outlive it.
inline RowSegmentFn per_cell_adapter(const CellFn& cell) {
  return [&cell](std::size_t i, std::size_t j_begin, std::size_t j_end) {
    for (std::size_t j = j_begin; j < j_end; ++j) cell(i, j);
  };
}

/// Column span of row i clamped to the diagonal band — the single clamp
/// algebra, now defined in core/diag.hpp (the lowered-kernel dispatch
/// needs it below the cpu layer); re-exported here for the cpu call sites.
using core::row_band_span;

/// Scheduling grain for one tile-diagonal of `n_tiles` tiles of side
/// `tile`: batch enough tiles per parallel_for claim that tiny tiles don't
/// pay one atomic RMW each, without starving the pool of parallel slack.
/// Calibrated for one-call-per-tile lowered dispatch (the per-claim
/// overhead is one atomic RMW plus one indirect call per tile, not one
/// type-erased call per tile row).
std::size_t tile_grain(std::size_t n_tiles, std::size_t tile, std::size_t workers);

/// A contiguous band of diagonals [d_begin, d_end) of a dim x dim grid,
/// executed with square tiles of side `tile`. An optional row window
/// [row_begin, row_hi()) — the streaming-strip axis — further restricts
/// the region to those rows; the default (row_end == 0, meaning dim)
/// keeps the historical whole-grid behaviour, so aggregate-initialized
/// call sites are unchanged.
struct TiledRegion {
  std::size_t dim = 0;
  std::size_t d_begin = 0;  ///< first diagonal (i+j) included
  std::size_t d_end = 0;    ///< one past the last diagonal included
  std::size_t tile = 1;     ///< cpu-tile: side length of the square tiles
  std::size_t row_begin = 0;  ///< first row included (strip window)
  std::size_t row_end = 0;    ///< one past the last row; 0 = dim (whole grid)

  /// One past the last row included (resolves the row_end == 0 default).
  std::size_t row_hi() const { return row_end == 0 ? dim : row_end; }
  bool row_windowed() const { return row_begin > 0 || row_hi() < dim; }

  /// Number of cells with d_begin <= i+j < d_end and i in the row window
  /// (exact).
  std::size_t cell_count() const;

  /// Throws std::invalid_argument if the region is malformed.
  void validate() const;
};

/// Functionally executes the region: every cell with i+j in
/// [d_begin, d_end) is visited exactly once, in an order that respects the
/// wavefront dependencies. Tiles of one tile-diagonal run concurrently on
/// `pool`.
///
/// The LoweredKernel overload is the hot path: each tile is exactly ONE
/// indirect call into the lowered kernel over `storage` (a full-grid-
/// shaped row-major byte array) — the row loop, neighbour-pointer advance
/// and band clamp all live inside the call; nothing type-erased is
/// invoked per tile. The RowSegmentFn overload dispatches one type-erased
/// call per clamped tile row (the segment ABI); the CellFn overload
/// adapts per-cell callees onto the same traversal. All three visit the
/// identical cell order.
void run_tiled_wavefront(const TiledRegion& region, ThreadPool& pool,
                         const core::LoweredKernel& kernel, std::byte* storage);
void run_tiled_wavefront(const TiledRegion& region, ThreadPool& pool,
                         const RowSegmentFn& segment);
void run_tiled_wavefront(const TiledRegion& region, ThreadPool& pool, const CellFn& cell);

/// Fused multi-grid variant: ONE barrier schedule (one parallel_for +
/// barrier per tile-diagonal) drives `n_grids` independent full-grid
/// storages through the same kernel. Grids iterate INNERMOST — each tile
/// claim makes n_grids back-to-back lowered calls on the same (I,J) block
/// of every storage — so the per-diagonal scheduling fixed cost (claim
/// RMWs, pool wake/park, the barrier) is paid once per batch instead of
/// once per grid. The storages are independent (a kernel call reads and
/// writes only its own storage), so each grid's results are bit-identical
/// to a lone run. n_grids == 1 is exactly the single-storage overload.
void run_tiled_wavefront(const TiledRegion& region, ThreadPool& pool,
                         const core::LoweredKernel& kernel, std::byte* const* storages,
                         std::size_t n_grids);

/// Strip-local storage-view variant: each grid's storage is a row-window
/// buffer described by a core::StorageView (base pointer + first resident
/// row). {grid.data(), 0} reproduces the full-grid overloads exactly; a
/// streaming strip passes the strip buffer with its halo row's index, and
/// every kernel call still receives absolute cell coordinates. The
/// region's row window must lie inside each view's resident rows (one
/// halo row above row_begin when the band reads north neighbours).
void run_tiled_wavefront(const TiledRegion& region, ThreadPool& pool,
                         const core::LoweredKernel& kernel, const core::StorageView* views,
                         std::size_t n_grids);

/// Sequential reference: visits the same cells in row-major order (which
/// also respects dependencies). Used as the correctness oracle in tests
/// and as the functional part of the sequential baseline. The
/// LoweredKernel overload executes a fully-in-band region as a SINGLE
/// kernel call over the whole rectangle (row-major order satisfies every
/// dependency); banded regions degrade to one call per clamped row. The
/// segment overload issues one type-erased call per row.
void run_serial_wavefront(const TiledRegion& region, const core::LoweredKernel& kernel,
                          std::byte* storage);
void run_serial_wavefront(const TiledRegion& region, const core::LoweredKernel& kernel,
                          core::StorageView view);
void run_serial_wavefront(const TiledRegion& region, const RowSegmentFn& segment);
void run_serial_wavefront(const TiledRegion& region, const CellFn& cell);

/// Simulated time of run_tiled_wavefront on `cpu`: per tile-diagonal,
/// max(1, tiles/P) tile slots of (T^2 elements + scheduling) plus a
/// barrier. Deterministic in the parameters only — the hybrid executor's
/// run() and estimate() both charge exactly this.
double tiled_wavefront_cost_ns(const TiledRegion& region, const sim::CpuModel& cpu,
                               double tsize_units, std::size_t elem_bytes);

/// Simulated time of the optimized sequential baseline over the region
/// (no tiling, no scheduling overhead, cache-friendly row-major sweep).
double serial_wavefront_cost_ns(const TiledRegion& region, const sim::CpuModel& cpu,
                                double tsize_units, std::size_t elem_bytes);

}  // namespace wavetune::cpu
