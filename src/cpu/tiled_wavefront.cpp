#include "cpu/tiled_wavefront.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "core/diag.hpp"

namespace wavetune::cpu {

std::size_t TiledRegion::cell_count() const {
  // core/diag.hpp is the single source of the diagonal-length algebra.
  const std::size_t r_hi = row_hi();
  std::size_t n = 0;
  for (std::size_t d = d_begin; d < d_end; ++d) {
    n += core::diag_rows_in(dim, d, row_begin, r_hi);
  }
  return n;
}

void TiledRegion::validate() const {
  if (dim == 0) throw std::invalid_argument("TiledRegion: dim == 0");
  if (tile == 0) throw std::invalid_argument("TiledRegion: tile == 0");
  if (d_begin > d_end) throw std::invalid_argument("TiledRegion: d_begin > d_end");
  if (d_end > 2 * dim - 1) throw std::invalid_argument("TiledRegion: d_end beyond last diagonal");
  if (row_end > dim) throw std::invalid_argument("TiledRegion: row_end beyond the grid");
  if (row_begin >= row_hi()) throw std::invalid_argument("TiledRegion: empty row window");
}

std::size_t tile_grain(std::size_t n_tiles, std::size_t tile, std::size_t workers) {
  // Calibrated for one-call-per-tile lowered dispatch. Two thresholds:
  //
  //  * kInlineCells: farming a tile-diagonal out to the pool costs
  //    helper submissions plus a CV wakeup/sleep cycle per helper
  //    (microseconds). A diagonal whose ENTIRE work is below this many
  //    cells (~a microsecond at ns-scale kernels) finishes faster on the
  //    calling thread than the wakeup alone would take — returning the
  //    full range as one grain makes parallel_for run it inline with
  //    zero pool traffic. Pre-lowering, each tile also paid T
  //    type-erased calls that dwarfed this accounting; with one indirect
  //    call per tile the scheduling machinery IS the overhead. The
  //    threshold is cell-count-based (tile_grain sees no kernel cost),
  //    so it deliberately stays small: for an expensive kernel the worst
  //    case is one claim's worth of work serialized, the same exposure
  //    the per-claim batching below always had.
  //  * kMinCellsPerClaim: once the pool is engaged, each claim costs one
  //    contended atomic RMW; ~512 cells of work per claim keeps that
  //    under a few percent.
  constexpr std::size_t kInlineCells = 1024;
  constexpr std::size_t kMinCellsPerClaim = 512;
  const std::size_t per_tile = tile * tile;
  if (workers == 0) return 1;
  if (per_tile < kInlineCells && n_tiles <= kInlineCells / per_tile) return n_tiles;
  if (per_tile >= kMinCellsPerClaim) return 1;
  const std::size_t want = (kMinCellsPerClaim + per_tile - 1) / per_tile;
  // Never batch so hard that the diagonal stops feeding every worker.
  const std::size_t fair = std::max<std::size_t>(1, n_tiles / (2 * workers));
  return std::min(want, fair);
}

namespace {

/// Per-tile-diagonal state of the lowered barrier sweep, dispatched
/// through ThreadPool's raw parallel_for so nothing type-erased is
/// invoked per tile. Dispatch is view-based (base + first resident row):
/// the whole-grid overloads pass {storage, 0}, streaming strips a
/// row-window buffer, both through the same tile_local pointer math.
struct LoweredDiagCtx {
  const core::LoweredKernel* kernel;
  core::StorageView view;
  const TiledRegion* region;
  std::size_t k;  ///< current tile-diagonal (I + J == k)
};

void run_lowered_diag_tile(void* pv, std::size_t I) {
  const LoweredDiagCtx& c = *static_cast<const LoweredDiagCtx*>(pv);
  const std::size_t dim = c.region->dim;
  const std::size_t T = c.region->tile;
  const std::size_t J = c.k - I;
  // One indirect call per tile: clamping and the row loop live inside
  // the lowered kernel dispatch. The row window clips tiles the strip
  // boundary cuts through.
  const std::size_t row_lo = std::max(I * T, c.region->row_begin);
  const std::size_t row_hi = std::min({I * T + T, dim, c.region->row_hi()});
  c.kernel->tile_local(c.view.base, c.view.base_row, row_lo, row_hi, J * T,
                       std::min(J * T + T, dim), c.region->d_begin, c.region->d_end);
}

/// Fused-batch counterpart of LoweredDiagCtx: one claim dispatches the
/// same (I,J) tile across every batch member's storage, grids innermost.
struct LoweredMultiDiagCtx {
  const core::LoweredKernel* kernel;
  const core::StorageView* views;
  std::size_t n_grids;
  const TiledRegion* region;
  std::size_t k;  ///< current tile-diagonal (I + J == k)
};

void run_lowered_multi_diag_tile(void* pv, std::size_t I) {
  const LoweredMultiDiagCtx& c = *static_cast<const LoweredMultiDiagCtx*>(pv);
  const std::size_t dim = c.region->dim;
  const std::size_t T = c.region->tile;
  const std::size_t J = c.k - I;
  const std::size_t row_lo = std::max(I * T, c.region->row_begin);
  const std::size_t row_hi = std::min({I * T + T, dim, c.region->row_hi()});
  const std::size_t col_lo = J * T;
  const std::size_t col_hi = std::min(col_lo + T, dim);
  // Grids innermost: the tile geometry (and the claim that scheduled it)
  // amortizes over the whole batch; each storage is written only by its
  // own call, so member results cannot cross-contaminate.
  for (std::size_t g = 0; g < c.n_grids; ++g) {
    c.kernel->tile_local(c.views[g].base, c.views[g].base_row, row_lo, row_hi, col_lo, col_hi,
                         c.region->d_begin, c.region->d_end);
  }
}

/// Inclusive clamped tile-row range of tile-diagonal k under the region's
/// row window; empty when first > last.
struct TileRowRange {
  std::size_t first = 1;
  std::size_t last = 0;
};

TileRowRange tile_rows_on_diag(const TiledRegion& region, std::size_t M, std::size_t k) {
  const std::size_t T = region.tile;
  TileRowRange r;
  r.first = std::max(core::diag_row_lo(M, k), region.row_begin / T);
  r.last = std::min(core::diag_row_hi(M, k), (region.row_hi() - 1) / T);
  return r;
}

}  // namespace

void run_tiled_wavefront(const TiledRegion& region, ThreadPool& pool,
                         const core::LoweredKernel& kernel, std::byte* storage) {
  region.validate();
  if (region.d_begin == region.d_end) return;
  const std::size_t T = region.tile;
  const std::size_t M = (region.dim + T - 1) / T;  // tiles per side

  LoweredDiagCtx ctx{&kernel, {storage, 0}, &region, 0};
  for (std::size_t k = 0; k < 2 * M - 1; ++k) {
    const std::size_t span_lo = k * T;
    const std::size_t span_hi = (k + 2) * T - 2;  // inclusive
    if (span_lo >= region.d_end || span_hi < region.d_begin) continue;

    const TileRowRange rows = tile_rows_on_diag(region, M, k);
    if (rows.first > rows.last) continue;
    const std::size_t grain = tile_grain(rows.last - rows.first + 1, T, pool.worker_count());
    ctx.k = k;
    pool.parallel_for(rows.first, rows.last + 1, &run_lowered_diag_tile, &ctx, grain);
    // parallel_for blocks: that is the inter-tile-diagonal barrier.
  }
}

void run_tiled_wavefront(const TiledRegion& region, ThreadPool& pool,
                         const core::LoweredKernel& kernel, const core::StorageView* views,
                         std::size_t n_grids) {
  region.validate();
  if (n_grids == 0) throw std::invalid_argument("run_tiled_wavefront: n_grids == 0");
  if (region.d_begin == region.d_end) return;
  const std::size_t T = region.tile;
  const std::size_t M = (region.dim + T - 1) / T;  // tiles per side

  LoweredMultiDiagCtx ctx{&kernel, views, n_grids, &region, 0};
  for (std::size_t k = 0; k < 2 * M - 1; ++k) {
    const std::size_t span_lo = k * T;
    const std::size_t span_hi = (k + 2) * T - 2;  // inclusive
    if (span_lo >= region.d_end || span_hi < region.d_begin) continue;

    const TileRowRange rows = tile_rows_on_diag(region, M, k);
    if (rows.first > rows.last) continue;
    // Each claim carries n_grids tiles' worth of cells, so the per-claim
    // batching the single-grid calibration picked shrinks accordingly
    // (never below one tile per claim).
    const std::size_t grain = std::max<std::size_t>(
        1, tile_grain(rows.last - rows.first + 1, T, pool.worker_count()) / n_grids);
    ctx.k = k;
    pool.parallel_for(rows.first, rows.last + 1, &run_lowered_multi_diag_tile, &ctx, grain);
    // parallel_for blocks: ONE inter-tile-diagonal barrier for the whole
    // batch — the fixed cost continuous batching amortizes.
  }
}

void run_tiled_wavefront(const TiledRegion& region, ThreadPool& pool,
                         const core::LoweredKernel& kernel, std::byte* const* storages,
                         std::size_t n_grids) {
  if (n_grids == 1) {
    run_tiled_wavefront(region, pool, kernel, storages[0]);
    return;
  }
  if (n_grids == 0) throw std::invalid_argument("run_tiled_wavefront: n_grids == 0");
  std::vector<core::StorageView> views(n_grids);
  for (std::size_t g = 0; g < n_grids; ++g) views[g] = {storages[g], 0};
  run_tiled_wavefront(region, pool, kernel, views.data(), n_grids);
}

void run_tiled_wavefront(const TiledRegion& region, ThreadPool& pool,
                         const RowSegmentFn& segment) {
  region.validate();
  if (region.d_begin == region.d_end) return;
  const std::size_t dim = region.dim;
  const std::size_t T = region.tile;
  const std::size_t M = (dim + T - 1) / T;  // tiles per side

  // Tile-diagonal k covers global diagonals [k*T, (k+2)*T - 2]; include k
  // when that span intersects [d_begin, d_end).
  for (std::size_t k = 0; k < 2 * M - 1; ++k) {
    const std::size_t span_lo = k * T;
    const std::size_t span_hi = (k + 2) * T - 2;  // inclusive
    if (span_lo >= region.d_end || span_hi < region.d_begin) continue;

    // Tiles on tile-diagonal k: same row algebra as cells on a cell
    // diagonal of an MxM grid (core/diag.hpp, with dim = M), clamped to
    // the region's row window.
    const TileRowRange rows = tile_rows_on_diag(region, M, k);
    if (rows.first > rows.last) continue;
    const std::size_t grain = tile_grain(rows.last - rows.first + 1, T, pool.worker_count());
    pool.parallel_for(
        rows.first, rows.last + 1,
        [&](std::size_t I) {
          const std::size_t J = k - I;
          const std::size_t row_lo = std::max(I * T, region.row_begin);
          const std::size_t row_hi = std::min({I * T + T, dim, region.row_hi()});  // exclusive
          const std::size_t col_lo = J * T;
          const std::size_t col_hi = std::min(col_lo + T, dim);
          // Clamp each row's column run to the diagonal band up front and
          // dispatch it whole: no per-cell membership branch.
          for (std::size_t i = row_lo; i < row_hi; ++i) {
            if (region.d_end <= i) break;
            const auto [j_lo, j_hi] =
                row_band_span(i, region.d_begin, region.d_end, col_lo, col_hi);
            if (j_lo < j_hi) segment(i, j_lo, j_hi);
          }
        },
        grain);
    // parallel_for blocks: that is the inter-tile-diagonal barrier.
  }
}

void run_tiled_wavefront(const TiledRegion& region, ThreadPool& pool, const CellFn& cell) {
  run_tiled_wavefront(region, pool, per_cell_adapter(cell));
}

void run_serial_wavefront(const TiledRegion& region, const core::LoweredKernel& kernel,
                          core::StorageView view) {
  region.validate();
  if (region.d_begin == region.d_end) return;
  // One band-clamped dispatch over the whole remaining rectangle: a full
  // sweep (everything in band) is a SINGLE kernel call — row-major order
  // over the rectangle satisfies every wavefront dependency — and a band
  // slice degrades to one call per clamped row inside tile_local(), the
  // same traversal as the segment overload below.
  const std::size_t i_first =
      std::max(core::diag_row_lo(region.dim, region.d_begin), region.row_begin);
  const std::size_t i_last = region.row_hi();
  if (i_first >= i_last) return;
  kernel.tile_local(view.base, view.base_row, i_first, i_last, 0, region.dim, region.d_begin,
                    region.d_end);
}

void run_serial_wavefront(const TiledRegion& region, const core::LoweredKernel& kernel,
                          std::byte* storage) {
  run_serial_wavefront(region, kernel, core::StorageView{storage, 0});
}

void run_serial_wavefront(const TiledRegion& region, const RowSegmentFn& segment) {
  region.validate();
  if (region.d_begin == region.d_end) return;
  // Rows below diag_row_lo(dim, d_begin) have an empty band span: when the
  // band starts deep in the grid (phase-3 runs), skip straight to the
  // first row that intersects it instead of scanning empties.
  const std::size_t i_first =
      std::max(core::diag_row_lo(region.dim, region.d_begin), region.row_begin);
  for (std::size_t i = i_first; i < region.row_hi(); ++i) {
    // Clamp the column range to the diagonal band to avoid a full scan.
    if (region.d_end <= i) break;
    const auto [j_lo, j_hi] = row_band_span(i, region.d_begin, region.d_end, 0, region.dim);
    if (j_lo < j_hi) segment(i, j_lo, j_hi);
  }
}

void run_serial_wavefront(const TiledRegion& region, const CellFn& cell) {
  run_serial_wavefront(region, per_cell_adapter(cell));
}

double tiled_wavefront_cost_ns(const TiledRegion& region, const sim::CpuModel& cpu,
                               double tsize_units, std::size_t elem_bytes) {
  region.validate();
  if (region.d_begin == region.d_end) return 0.0;
  const std::size_t dim = region.dim;
  const std::size_t T = region.tile;
  const std::size_t M = (dim + T - 1) / T;
  const double P = cpu.effective_parallelism();
  // Per tile: T^2 elements, one lowered-kernel dispatch, and the
  // scheduler's claim/enqueue overhead.
  const double tile_cost = static_cast<double>(T) * static_cast<double>(T) *
                               cpu.tiled_element_ns(tsize_units, elem_bytes, T) +
                           cpu.kernel_dispatch_ns + cpu.tile_sched_ns;

  double total = 0.0;
  for (std::size_t k = 0; k < 2 * M - 1; ++k) {
    const std::size_t span_lo = k * T;
    const std::size_t span_hi = (k + 2) * T - 2;
    if (span_lo >= region.d_end || span_hi < region.d_begin) continue;
    const TileRowRange rows = tile_rows_on_diag(region, M, k);
    if (rows.first > rows.last) continue;
    const std::size_t n_k = rows.last - rows.first + 1;
    const double slots = std::max(1.0, static_cast<double>(n_k) / P);
    total += slots * tile_cost + cpu.barrier_ns;
  }
  return total;
}

double serial_wavefront_cost_ns(const TiledRegion& region, const sim::CpuModel& cpu,
                                double tsize_units, std::size_t elem_bytes) {
  region.validate();
  return static_cast<double>(region.cell_count()) * cpu.element_ns(tsize_units, elem_bytes);
}

}  // namespace wavetune::cpu
