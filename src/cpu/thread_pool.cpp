#include "cpu/thread_pool.hpp"

#include <atomic>
#include <exception>
#include <stdexcept>

namespace wavetune::cpu {

ThreadPool::ThreadPool(std::size_t workers) {
  std::size_t n = workers;
  if (n == 0) {
    n = std::thread::hardware_concurrency();
    if (n == 0) n = 1;
  }
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
}

void ThreadPool::worker_loop() {
  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_task_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop();
      ++active_;
    }
    task.fn();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --active_;
      if (queue_.empty() && active_ == 0) cv_idle_.notify_all();
    }
  }
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stop_) throw std::runtime_error("ThreadPool::submit: pool is stopping");
    queue_.push(Task{std::move(task)});
  }
  cv_task_.notify_one();
}

void ThreadPool::drain() {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_idle_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& fn) {
  if (begin >= end) return;
  const std::size_t n = end - begin;
  const std::size_t workers = worker_count();
  if (workers <= 1 || n == 1) {
    for (std::size_t i = begin; i < end; ++i) fn(i);
    return;
  }

  // Dynamic chunking via a shared cursor: balances uneven per-iteration
  // cost (border tiles are smaller than interior tiles) without a
  // per-iteration mutex.
  struct Shared {
    std::atomic<std::size_t> next;
    std::atomic<std::size_t> remaining;
    std::exception_ptr error;
    std::mutex error_mutex;
    std::mutex done_mutex;
    std::condition_variable done_cv;
  };
  auto shared = std::make_shared<Shared>();
  shared->next.store(begin);
  const std::size_t tasks = std::min(workers, n);
  shared->remaining.store(tasks);

  auto body = [shared, end, &fn] {
    for (;;) {
      const std::size_t i = shared->next.fetch_add(1);
      if (i >= end) break;
      try {
        fn(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(shared->error_mutex);
        if (!shared->error) shared->error = std::current_exception();
      }
    }
    if (shared->remaining.fetch_sub(1) == 1) {
      std::lock_guard<std::mutex> lock(shared->done_mutex);
      shared->done_cv.notify_all();
    }
  };

  // The caller participates as one of the workers so a single-threaded
  // environment still makes progress while tasks sit in the queue.
  for (std::size_t t = 1; t < tasks; ++t) submit(body);
  body();

  std::unique_lock<std::mutex> lock(shared->done_mutex);
  shared->done_cv.wait(lock, [&] { return shared->remaining.load() == 0; });
  if (shared->error) std::rethrow_exception(shared->error);
}

}  // namespace wavetune::cpu
