#include "cpu/thread_pool.hpp"

#include <exception>
#include <stdexcept>
#include <utility>

namespace wavetune::cpu {

namespace {

/// Identity of the current thread within a pool: set once per worker
/// thread, read by submit_local to find the worker's own deque. A plain
/// thread exterior to every pool keeps {nullptr, 0}.
struct WorkerIdentity {
  const ThreadPool* pool = nullptr;
  std::size_t index = 0;
};
thread_local WorkerIdentity tls_worker;

}  // namespace

ThreadPool::ThreadPool(std::size_t workers) {
  std::size_t n = workers;
  if (n == 0) {
    n = std::thread::hardware_concurrency();
    if (n == 0) n = 1;
  }
  queues_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) queues_.push_back(std::make_unique<WorkerQueue>());
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
}

void ThreadPool::claimed() {
  // Active BEFORE un-queued: a drain() racing the claim sees the task in
  // at least one of the two counters at every instant.
  active_.fetch_add(1, std::memory_order_relaxed);
  queued_.fetch_sub(1, std::memory_order_release);
}

void ThreadPool::finished() {
  if (active_.fetch_sub(1, std::memory_order_acq_rel) == 1 &&
      queued_.load(std::memory_order_acquire) == 0) {
    // Momentarily fully idle: tell drain(). Taking the mutex orders the
    // notify after any drain() that already evaluated its predicate.
    std::lock_guard<std::mutex> lock(mutex_);
    cv_idle_.notify_all();
  }
}

void ThreadPool::notify_work() {
  if (sleepers_.load(std::memory_order_seq_cst) == 0) return;
  std::lock_guard<std::mutex> lock(mutex_);
  cv_task_.notify_one();
}

bool ThreadPool::pop_local(std::size_t index, std::function<void()>& out) {
  WorkerQueue& q = *queues_[index];
  std::lock_guard<std::mutex> lock(q.mutex);
  if (q.tasks.empty()) return false;
  out = std::move(q.tasks.back());  // bottom: newest first (cache-hot)
  q.tasks.pop_back();
  claimed();
  return true;
}

bool ThreadPool::pop_global(std::function<void()>& out) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (global_.empty()) return false;
  out = std::move(global_.front());
  global_.pop_front();
  claimed();
  return true;
}

bool ThreadPool::try_steal(std::size_t start, std::function<void()>& out) {
  const std::size_t n = queues_.size();
  for (std::size_t k = 0; k < n; ++k) {
    WorkerQueue& q = *queues_[(start + k) % n];
    std::unique_lock<std::mutex> lock(q.mutex, std::try_to_lock);
    if (!lock.owns_lock() || q.tasks.empty()) continue;
    out = std::move(q.tasks.front());  // top: oldest first
    q.tasks.pop_front();
    claimed();
    return true;
  }
  return false;
}

void ThreadPool::worker_loop(std::size_t index) {
  tls_worker = WorkerIdentity{this, index};
  std::function<void()> task;
  for (;;) {
    if (pop_local(index, task) || pop_global(task) ||
        try_steal((index + 1) % queues_.size(), task)) {
      task();
      task = nullptr;  // release captures before the idle bookkeeping
      finished();
      continue;
    }
    std::unique_lock<std::mutex> lock(mutex_);
    if (stop_ && queued_.load(std::memory_order_seq_cst) == 0) return;
    sleepers_.fetch_add(1, std::memory_order_seq_cst);
    // queued_ is bumped by producers BEFORE the push lands, so this
    // predicate can wake a worker slightly early; the scan above simply
    // retries until the in-flight push becomes claimable. The handshake
    // with notify_work() is Dekker-style — producer: queued_ store then
    // sleepers_ load; consumer: sleepers_ store then queued_ load — so
    // ALL four accesses must be seq_cst: the single total order
    // guarantees at least one side sees the other, ruling out the
    // sleep-forever interleaving.
    cv_task_.wait(lock, [this] {
      return stop_ || queued_.load(std::memory_order_seq_cst) > 0;
    });
    sleepers_.fetch_sub(1, std::memory_order_seq_cst);
    if (stop_ && queued_.load(std::memory_order_seq_cst) == 0) return;
  }
}

void ThreadPool::submit(std::function<void()> task) {
  queued_.fetch_add(1, std::memory_order_seq_cst);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stop_) {
      queued_.fetch_sub(1, std::memory_order_relaxed);
      throw std::runtime_error("ThreadPool::submit: pool is stopping");
    }
    global_.push_back(std::move(task));
    cv_task_.notify_one();
  }
}

void ThreadPool::submit_local(std::function<void()> task) {
  if (tls_worker.pool != this) {
    submit(std::move(task));
    return;
  }
  WorkerQueue& q = *queues_[tls_worker.index];
  queued_.fetch_add(1, std::memory_order_seq_cst);
  {
    std::lock_guard<std::mutex> lock(q.mutex);
    q.tasks.push_back(std::move(task));
  }
  notify_work();
}

bool ThreadPool::try_run_one() {
  std::function<void()> task;
  if (!pop_global(task) && !try_steal(0, task)) return false;
  task();
  task = nullptr;
  finished();
  return true;
}

void ThreadPool::drain() {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_idle_.wait(lock, [this] {
    return queued_.load(std::memory_order_acquire) == 0 &&
           active_.load(std::memory_order_acquire) == 0;
  });
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& fn, std::size_t grain) {
  // Trampoline onto the raw variant: one type-erased call per index is
  // exactly what this overload's contract always cost.
  parallel_for(
      begin, end,
      [](void* ctx, std::size_t i) {
        (*static_cast<const std::function<void(std::size_t)>*>(ctx))(i);
      },
      const_cast<std::function<void(std::size_t)>*>(&fn), grain);
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end, ForFn fn, void* ctx,
                              std::size_t grain) {
  if (begin >= end) return;
  if (grain == 0) grain = 1;
  const std::size_t n = end - begin;
  const std::size_t workers = worker_count();
  if (workers <= 1 || n <= grain) {
    for (std::size_t i = begin; i < end; ++i) fn(ctx, i);
    return;
  }

  // Dynamic chunking via a shared cursor: balances uneven per-iteration
  // cost (border tiles are smaller than interior tiles) without a
  // per-iteration mutex; `grain` indices are claimed per atomic RMW. All
  // shared state lives on this stack frame — parallel_for blocks on the
  // latch until every helper is done with it, and the final count_down
  // completes under the latch mutex, so the frame strictly outlives all
  // uses.
  struct ForState {
    std::atomic<std::size_t> next;
    std::size_t end;
    std::size_t grain;
    ForFn fn;
    void* ctx;
    std::exception_ptr error;
    std::mutex error_mutex;
    CompletionLatch latch;

    void run() {
      for (;;) {
        const std::size_t chunk = next.fetch_add(grain, std::memory_order_relaxed);
        if (chunk >= end) break;
        const std::size_t chunk_end = std::min(end, chunk + grain);
        try {
          for (std::size_t i = chunk; i < chunk_end; ++i) fn(ctx, i);
        } catch (...) {
          std::lock_guard<std::mutex> lock(error_mutex);
          if (!error) error = std::current_exception();
        }
      }
      latch.count_down();
    }
  };
  ForState state;
  state.next.store(begin);
  state.end = end;
  state.grain = grain;
  state.fn = fn;
  state.ctx = ctx;
  const std::size_t chunks = (n + grain - 1) / grain;
  const std::size_t tasks = std::min(workers, chunks);
  state.latch.reset(tasks);

  // The caller participates as one of the workers so a single-threaded
  // environment still makes progress while tasks sit in the queue. The
  // submitted closure captures one pointer, which fits std::function's
  // small-buffer storage — no allocation per helper.
  ForState* sp = &state;
  std::size_t submitted = 0;
  try {
    for (std::size_t t = 1; t < tasks; ++t) {
      submit([sp] { sp->run(); });
      ++submitted;
    }
  } catch (...) {
    // submit() failed (allocation, pool stopping): the already-queued
    // helpers hold a pointer to this frame, so cancel the unclaimed
    // chunks, stand in for the helpers that never got queued, and drain
    // the queued ones before letting the exception unwind the frame.
    state.next.store(end, std::memory_order_relaxed);
    for (std::size_t t = submitted + 1; t < tasks; ++t) state.latch.count_down();
    state.run();
    state.latch.wait();
    throw;
  }
  state.run();

  state.latch.wait();
  if (state.error) std::rethrow_exception(state.error);
}

}  // namespace wavetune::cpu
