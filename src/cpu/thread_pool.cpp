#include "cpu/thread_pool.hpp"

#include <atomic>
#include <exception>
#include <stdexcept>

namespace wavetune::cpu {

ThreadPool::ThreadPool(std::size_t workers) {
  std::size_t n = workers;
  if (n == 0) {
    n = std::thread::hardware_concurrency();
    if (n == 0) n = 1;
  }
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) {
    if (w.joinable()) w.join();
  }
}

void ThreadPool::worker_loop() {
  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_task_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop();
      ++active_;
    }
    task.fn();
    {
      std::lock_guard<std::mutex> lock(mutex_);
      --active_;
      if (queue_.empty() && active_ == 0) cv_idle_.notify_all();
    }
  }
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (stop_) throw std::runtime_error("ThreadPool::submit: pool is stopping");
    queue_.push(Task{std::move(task)});
  }
  cv_task_.notify_one();
}

void ThreadPool::drain() {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_idle_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::parallel_for(std::size_t begin, std::size_t end,
                              const std::function<void(std::size_t)>& fn, std::size_t grain) {
  if (begin >= end) return;
  if (grain == 0) grain = 1;
  const std::size_t n = end - begin;
  const std::size_t workers = worker_count();
  if (workers <= 1 || n <= grain) {
    for (std::size_t i = begin; i < end; ++i) fn(i);
    return;
  }

  // Dynamic chunking via a shared cursor: balances uneven per-iteration
  // cost (border tiles are smaller than interior tiles) without a
  // per-iteration mutex; `grain` indices are claimed per atomic RMW. All
  // shared state lives on this stack frame — parallel_for blocks on the
  // latch until every helper is done with it, and the final count_down
  // completes under the latch mutex, so the frame strictly outlives all
  // uses.
  struct ForState {
    std::atomic<std::size_t> next;
    std::size_t end;
    std::size_t grain;
    const std::function<void(std::size_t)>* fn;
    std::exception_ptr error;
    std::mutex error_mutex;
    CompletionLatch latch;

    void run() {
      for (;;) {
        const std::size_t chunk = next.fetch_add(grain, std::memory_order_relaxed);
        if (chunk >= end) break;
        const std::size_t chunk_end = std::min(end, chunk + grain);
        try {
          for (std::size_t i = chunk; i < chunk_end; ++i) (*fn)(i);
        } catch (...) {
          std::lock_guard<std::mutex> lock(error_mutex);
          if (!error) error = std::current_exception();
        }
      }
      latch.count_down();
    }
  };
  ForState state;
  state.next.store(begin);
  state.end = end;
  state.grain = grain;
  state.fn = &fn;
  const std::size_t chunks = (n + grain - 1) / grain;
  const std::size_t tasks = std::min(workers, chunks);
  state.latch.reset(tasks);

  // The caller participates as one of the workers so a single-threaded
  // environment still makes progress while tasks sit in the queue. The
  // submitted closure captures one pointer, which fits std::function's
  // small-buffer storage — no allocation per helper.
  ForState* sp = &state;
  std::size_t submitted = 0;
  try {
    for (std::size_t t = 1; t < tasks; ++t) {
      submit([sp] { sp->run(); });
      ++submitted;
    }
  } catch (...) {
    // submit() failed (allocation, pool stopping): the already-queued
    // helpers hold a pointer to this frame, so cancel the unclaimed
    // chunks, stand in for the helpers that never got queued, and drain
    // the queued ones before letting the exception unwind the frame.
    state.next.store(end, std::memory_order_relaxed);
    for (std::size_t t = submitted + 1; t < tasks; ++t) state.latch.count_down();
    state.run();
    state.latch.wait();
    throw;
  }
  state.run();

  state.latch.wait();
  if (state.error) std::rethrow_exception(state.error);
}

}  // namespace wavetune::cpu
