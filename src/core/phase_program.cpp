#include "core/phase_program.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "core/diag.hpp"

namespace wavetune::core {

const char* phase_device_name(PhaseDevice d) {
  switch (d) {
    case PhaseDevice::kCpu:
      return "cpu";
    case PhaseDevice::kGpuSingle:
      return "gpu-single";
    case PhaseDevice::kGpuMulti:
      return "gpu-multi";
  }
  return "?";
}

void PhaseDesc::validate(std::size_t dim) const {
  if (d_begin >= d_end) throw std::invalid_argument("PhaseDesc: empty diagonal range");
  if (d_end > num_diagonals(dim)) {
    throw std::invalid_argument("PhaseDesc: d_end beyond the last diagonal");
  }
  if (strip_rows > 0) {
    // Streaming strips: rows partition [0, dim) exactly once by
    // construction; what CAN go wrong is a strip taller than the grid
    // (meaningless) or a pool outside the double/triple-buffer design
    // range. The wedge split of kGpuMulti already owns the row axis.
    if (device == PhaseDevice::kGpuMulti) {
      throw std::invalid_argument("PhaseDesc: gpu-multi phases cannot stream strips");
    }
    if (strip_rows > dim) {
      throw std::invalid_argument("PhaseDesc: strip_rows exceeds the grid side");
    }
    if (strip_buffers < 1 || strip_buffers > 3) {
      throw std::invalid_argument("PhaseDesc: strip_buffers must be in [1, 3]");
    }
  }
  switch (device) {
    case PhaseDevice::kCpu:
      if (cpu_tile == 0) throw std::invalid_argument("PhaseDesc: cpu phase with tile == 0");
      break;
    case PhaseDevice::kGpuSingle:
      if (gpu_count != 1) {
        throw std::invalid_argument("PhaseDesc: gpu-single phase with gpu_count != 1");
      }
      if (gpu_tile == 0) throw std::invalid_argument("PhaseDesc: gpu phase with gpu_tile == 0");
      break;
    case PhaseDevice::kGpuMulti:
      if (gpu_count < 2) {
        throw std::invalid_argument("PhaseDesc: gpu-multi phase with gpu_count < 2");
      }
      if (halo < 0) throw std::invalid_argument("PhaseDesc: gpu-multi phase with halo < 0");
      if (gpu_tile != 1) {
        // Multi-GPU schedules run untiled (DESIGN.md §5, TunableParams::normalized).
        throw std::invalid_argument("PhaseDesc: gpu-multi phase must be untiled (gpu_tile == 1)");
      }
      break;
  }
}

void PhaseProgram::validate() const {
  if (dim == 0) throw std::invalid_argument("PhaseProgram: dim == 0");
  if (phases.empty()) throw std::invalid_argument("PhaseProgram: no phases");
  // Exact-once coverage in dependency order: contiguous, non-empty phases
  // from diagonal 0 to 2*dim-1. A gap would leave cells uncomputed (a
  // timing walk would silently skip them — the fuzz suite's poison runs
  // exist to catch exactly this); an overlap would compute cells twice.
  std::size_t expect = 0;
  for (const PhaseDesc& ph : phases) {
    ph.validate(dim);
    if (ph.d_begin != expect) {
      std::ostringstream ss;
      ss << "PhaseProgram: coverage break at diagonal " << expect << " (next phase starts at "
         << ph.d_begin << ")";
      throw std::invalid_argument(ss.str());
    }
    expect = ph.d_end;
  }
  if (expect != num_diagonals(dim)) {
    std::ostringstream ss;
    ss << "PhaseProgram: diagonals [" << expect << ", " << num_diagonals(dim)
       << ") are uncovered";
    throw std::invalid_argument(ss.str());
  }
}

int PhaseProgram::max_gpu_count() const {
  int n = 0;
  for (const PhaseDesc& ph : phases) {
    if (ph.is_gpu()) n = std::max(n, ph.gpu_count);
  }
  return n;
}

std::size_t PhaseProgram::cpu_phase_count() const {
  return static_cast<std::size_t>(
      std::count_if(phases.begin(), phases.end(), [](const PhaseDesc& p) { return p.is_cpu(); }));
}

std::size_t PhaseProgram::gpu_phase_count() const {
  return phases.size() - cpu_phase_count();
}

std::string PhaseProgram::describe() const {
  std::ostringstream ss;
  ss << "d" << num_diagonals(dim) << ":";
  bool first = true;
  for (const PhaseDesc& ph : phases) {
    if (!first) ss << ";";
    first = false;
    ss << "[" << ph.d_begin << "," << ph.d_end << ")";
    switch (ph.device) {
      case PhaseDevice::kCpu:
        ss << "cpu" << (ph.scheduler == cpu::Scheduler::kDataflow ? "f" : "b") << ph.cpu_tile;
        break;
      case PhaseDevice::kGpuSingle:
        ss << "gpu1t" << ph.gpu_tile;
        break;
      case PhaseDevice::kGpuMulti:
        ss << "gpu" << ph.gpu_count << "h" << ph.halo;
        break;
    }
    // Strip suffix only when streaming is on: whole-grid programs keep
    // their historical descriptions (and plan-cache keys) unchanged.
    if (ph.streamed()) ss << "s" << ph.strip_rows << "x" << ph.strip_buffers;
  }
  return ss.str();
}

PhaseProgram plan_phases(const InputParams& in, const TunableParams& raw,
                         cpu::Scheduler scheduler) {
  in.validate();
  const TunableParams p = raw.normalized(in.dim);
  const std::size_t dim = in.dim;
  const std::size_t d_total = num_diagonals(dim);
  const std::size_t d0 = p.uses_gpu() ? p.gpu_d_begin(dim) : d_total;
  const std::size_t d1 = p.uses_gpu() ? p.gpu_d_end(dim) : d_total;

  PhaseProgram prog;
  prog.dim = dim;
  prog.params = p;

  const auto cpu_phase = [&](std::size_t b, std::size_t e) {
    PhaseDesc ph;
    ph.device = PhaseDevice::kCpu;
    ph.d_begin = b;
    ph.d_end = e;
    ph.scheduler = scheduler;
    ph.cpu_tile = static_cast<std::size_t>(p.cpu_tile);
    prog.phases.push_back(ph);
  };

  if (d0 > 0) cpu_phase(0, d0);
  if (p.uses_gpu() && d0 < d1) {
    PhaseDesc ph;
    ph.d_begin = d0;
    ph.d_end = d1;
    ph.gpu_count = p.gpu_count();
    if (ph.gpu_count >= 2) {
      ph.device = PhaseDevice::kGpuMulti;
      ph.halo = p.halo;
      ph.gpu_tile = 1;
    } else {
      ph.device = PhaseDevice::kGpuSingle;
      ph.gpu_tile = static_cast<std::size_t>(p.gpu_tile);
      ph.halo = 0;  // single-GPU phases have no halo axis
    }
    prog.phases.push_back(ph);
  }
  if (d1 < d_total) cpu_phase(d1, d_total);

  prog.validate();
  return prog;
}

PhaseProgram make_cpu_only_program(const InputParams& in, int cpu_tile, std::size_t n_phases,
                                   cpu::Scheduler scheduler) {
  in.validate();
  const std::size_t d_total = num_diagonals(in.dim);
  const std::size_t n = std::clamp<std::size_t>(n_phases, 1, d_total);
  TunableParams p{cpu_tile, -1, -1, 1};
  p = p.normalized(in.dim);

  PhaseProgram prog;
  prog.dim = in.dim;
  prog.params = p;
  for (std::size_t s = 0; s < n; ++s) {
    PhaseDesc ph;
    ph.device = PhaseDevice::kCpu;
    ph.d_begin = d_total * s / n;
    ph.d_end = d_total * (s + 1) / n;
    ph.scheduler = scheduler;
    ph.cpu_tile = static_cast<std::size_t>(p.cpu_tile);
    prog.phases.push_back(ph);
  }
  prog.validate();
  return prog;
}

PhaseProgram split_gpu_band(PhaseProgram program, std::size_t k) {
  if (k <= 1) return program;
  std::vector<PhaseDesc> out;
  out.reserve(program.phases.size());
  for (const PhaseDesc& ph : program.phases) {
    if (ph.is_cpu()) {
      out.push_back(ph);
      continue;
    }
    const std::size_t width = ph.d_end - ph.d_begin;
    const std::size_t parts = std::min(k, width);
    for (std::size_t s = 0; s < parts; ++s) {
      PhaseDesc sub = ph;
      sub.d_begin = ph.d_begin + width * s / parts;
      sub.d_end = ph.d_begin + width * (s + 1) / parts;
      out.push_back(sub);
    }
  }
  program.phases = std::move(out);
  program.validate();
  return program;
}

PhaseProgram apply_strips(PhaseProgram program, std::size_t strip_rows,
                          std::size_t strip_buffers) {
  if (strip_rows == 0) return program;
  const std::size_t rows = std::min(strip_rows, program.dim);
  for (PhaseDesc& ph : program.phases) {
    if (ph.device == PhaseDevice::kGpuMulti) continue;
    ph.strip_rows = rows;
    ph.strip_buffers = strip_buffers;
  }
  program.validate();
  return program;
}

}  // namespace wavetune::core
