// Row-major byte grid holding the wavefront state.
//
// Elements are opaque fixed-size byte records (Problem<T>, the typed
// facade in core/spec.hpp, builds a safe view on top). The grid is the
// host-side truth; the simulated devices keep their own Buffer copies,
// and all movement between them is explicit — exactly like a
// discrete-memory machine.
//
// Ownership vs api::Plan (see api/plan.hpp): a Grid is the caller-owned
// output buffer of one request. Plans never own Grids; Engine::submit
// borrows a Grid until its future resolves, and one Plan may execute into
// many Grids concurrently.
#pragma once

#include <cassert>
#include <cstddef>
#include <stdexcept>
#include <vector>

#include "core/diag.hpp"

namespace wavetune::core {

class Grid {
public:
  /// Poison byte used by fill_poison(); reads of never-written cells show
  /// up as 0xCD patterns instead of silently-correct zeros.
  static constexpr std::byte kPoison = std::byte{0xCD};

  Grid(std::size_t dim, std::size_t elem_bytes);

  std::size_t dim() const { return dim_; }
  std::size_t elem_bytes() const { return elem_bytes_; }
  std::size_t size_bytes() const { return storage_.size(); }

  /// Checked accessors for public / typed access. The bounds check is
  /// debug-only (throws std::out_of_range in debug builds, compiles to an
  /// assert — i.e. nothing — under NDEBUG).
  std::byte* cell(std::size_t i, std::size_t j) {
    check(i, j);
    return storage_.data() + (i * dim_ + j) * elem_bytes_;
  }
  const std::byte* cell(std::size_t i, std::size_t j) const {
    check(i, j);
    return storage_.data() + (i * dim_ + j) * elem_bytes_;
  }

  /// Unchecked accessors for engine-adjacent code whose indices were
  /// already validated (no bounds check in any build). The lowered hot
  /// paths themselves run on raw storage pointers (core/lowered.hpp) and
  /// never come back through Grid; this is the escape hatch for
  /// everything in between — code that holds a Grid, has proven its
  /// indices, and must not pay even the debug throw.
  std::byte* cell_unchecked(std::size_t i, std::size_t j) {
    return storage_.data() + (i * dim_ + j) * elem_bytes_;
  }
  const std::byte* cell_unchecked(std::size_t i, std::size_t j) const {
    return storage_.data() + (i * dim_ + j) * elem_bytes_;
  }

  /// Byte offset of cell (i, j) within the storage (shared with device
  /// buffers, which mirror the same layout). Bounds-checked like cell().
  std::size_t offset(std::size_t i, std::size_t j) const {
    check(i, j);
    return (i * dim_ + j) * elem_bytes_;
  }

  std::byte* data() { return storage_.data(); }
  const std::byte* data() const { return storage_.data(); }

  /// Typed access; the caller asserts that T matches the element layout.
  template <typename T>
  T& as(std::size_t i, std::size_t j) {
    return *reinterpret_cast<T*>(cell(i, j));
  }
  template <typename T>
  const T& as(std::size_t i, std::size_t j) const {
    return *reinterpret_cast<const T*>(cell(i, j));
  }

  void fill_zero();
  void fill_poison();

private:
  std::size_t dim_;
  std::size_t elem_bytes_;
  std::vector<std::byte> storage_;

  /// Debug-only bounds check: throws in debug builds, is an assert (a
  /// no-op) under NDEBUG.
  void check(std::size_t i, std::size_t j) const {
#ifdef NDEBUG
    assert(i < dim_ && j < dim_);
    (void)i;
    (void)j;
#else
    if (i >= dim_ || j >= dim_) throw std::out_of_range("Grid: cell index out of range");
#endif
  }
};

}  // namespace wavetune::core
