// Row-major byte grid holding the wavefront state.
//
// Elements are opaque fixed-size byte records (Problem<T>, the typed
// facade in core/spec.hpp, builds a safe view on top). The grid is the
// host-side truth; the simulated devices keep their own Buffer copies,
// and all movement between them is explicit — exactly like a
// discrete-memory machine.
//
// Ownership vs api::Plan (see api/plan.hpp): a Grid is the caller-owned
// output buffer of one request. Plans never own Grids; Engine::submit
// borrows a Grid until its future resolves, and one Plan may execute into
// many Grids concurrently.
#pragma once

#include <cstddef>
#include <vector>

#include "core/diag.hpp"

namespace wavetune::core {

class Grid {
public:
  /// Poison byte used by fill_poison(); reads of never-written cells show
  /// up as 0xCD patterns instead of silently-correct zeros.
  static constexpr std::byte kPoison = std::byte{0xCD};

  Grid(std::size_t dim, std::size_t elem_bytes);

  std::size_t dim() const { return dim_; }
  std::size_t elem_bytes() const { return elem_bytes_; }
  std::size_t size_bytes() const { return storage_.size(); }

  std::byte* cell(std::size_t i, std::size_t j);
  const std::byte* cell(std::size_t i, std::size_t j) const;

  /// Byte offset of cell (i, j) within the storage (shared with device
  /// buffers, which mirror the same layout).
  std::size_t offset(std::size_t i, std::size_t j) const;

  std::byte* data() { return storage_.data(); }
  const std::byte* data() const { return storage_.data(); }

  /// Typed access; the caller asserts that T matches the element layout.
  template <typename T>
  T& as(std::size_t i, std::size_t j) {
    return *reinterpret_cast<T*>(cell(i, j));
  }
  template <typename T>
  const T& as(std::size_t i, std::size_t j) const {
    return *reinterpret_cast<const T*>(cell(i, j));
  }

  void fill_zero();
  void fill_poison();

private:
  std::size_t dim_;
  std::size_t elem_bytes_;
  std::vector<std::byte> storage_;

  void check(std::size_t i, std::size_t j) const;
};

}  // namespace wavetune::core
