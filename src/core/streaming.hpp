// Residency-capped streaming-strip planning.
//
// Out-of-core execution: when a grid's device footprint (dim^2 elements)
// exceeds what the deployment wants resident, the planner picks a
// strip_rows so each phase streams through a fixed pool of
// strip_buffers x (strip_rows + 1) x dim element buffers instead of one
// whole-grid buffer. The choice is cost-model driven: among the strip
// sizes that FIT the residency cap, a tiny analytic walk of the W/K/R
// event schedule (the same upload -> kernel -> readback shape the
// executor charges, tracked against a PCIe-availability and a
// queue-availability clock) picks the one with the shortest estimated
// makespan — bigger strips amortize transfer latency, smaller strips
// pipeline deeper, and the walk arbitrates instead of a heuristic.
#pragma once

#include <cstddef>
#include <stdexcept>

#include "core/phase_program.hpp"
#include "sim/hardware.hpp"

namespace wavetune::core {

/// Residency cap smaller than one strip_rows == 1 pool — no streamed plan
/// exists for the geometry.
class StreamingPlanError : public std::invalid_argument {
public:
  using std::invalid_argument::invalid_argument;
};

/// Planning-time constraints for plan_phases_streamed / Engine compiles.
struct PlanConstraints {
  /// Peak simulated device residency allowed, in bytes; 0 = unlimited
  /// (no streaming unless explicitly requested via apply_strips).
  std::size_t max_resident_bytes = 0;
  /// Strip pool size applied to streamed phases (1 = serialized-strip
  /// baseline, 2-3 = overlapped double/triple buffering).
  std::size_t strip_buffers = 2;
};

/// Device bytes of a whole-grid GPU phase: one dim x dim buffer.
std::size_t whole_grid_resident_bytes(std::size_t dim, std::size_t elem_bytes);

/// Device bytes of a streamed GPU phase: strip_buffers pool buffers of
/// (strip_rows + 1) x dim elements (one halo row each).
std::size_t streamed_resident_bytes(std::size_t dim, std::size_t elem_bytes,
                                    std::size_t strip_rows, std::size_t strip_buffers);

/// Largest strip_rows whose pool fits `cap` bytes (clamped to dim).
/// Throws StreamingPlanError when even strip_rows == 1 does not fit.
std::size_t max_strip_rows_for_cap(std::size_t dim, std::size_t elem_bytes, std::size_t cap,
                                   std::size_t strip_buffers);

/// Analytic makespan of one streamed GPU band [d_begin, d_end): walks the
/// per-strip upload/kernel/readback events against a PCIe clock, a
/// compute-queue clock and the strip pool's buffer-reuse dependencies —
/// the planning-side mirror of the executor's simulated schedule (an
/// approximation, not the charged value: it prices kernels per diagonal
/// at 3*elem_bytes traffic per item and ignores work-group tiling).
double estimate_streamed_gpu_phase_ns(std::size_t dim, std::size_t elem_bytes,
                                      double tsize_units, std::size_t d_begin,
                                      std::size_t d_end, std::size_t strip_rows,
                                      std::size_t strip_buffers, const sim::GpuModel& gpu,
                                      const sim::PcieModel& pcie);

/// Residency-capped strip selection over an already-compiled program: if
/// any single-GPU phase's whole-grid footprint exceeds
/// constraints.max_resident_bytes, applies the cost-model-chosen strip
/// axis via apply_strips (all non-multi-GPU phases stream, so checkpoint
/// points cover the whole run). Returns the program unchanged when there
/// is no cap, the whole grid fits, or no phase touches the device. Throws
/// StreamingPlanError when a multi-GPU phase exceeds the cap (the
/// multi-GPU path cannot stream) or when even 1-row strips do not fit.
PhaseProgram apply_residency_cap(PhaseProgram program, const InputParams& in,
                                 const PlanConstraints& constraints);

/// plan_phases + apply_residency_cap in one call. With no cap (or a cap
/// the whole grid fits), the result is exactly plan_phases(...).
PhaseProgram plan_phases_streamed(const InputParams& in, const TunableParams& params,
                                  cpu::Scheduler scheduler,
                                  const PlanConstraints& constraints);

}  // namespace wavetune::core
