// core::RunControl — the cancellation/deadline contract between a caller
// (api::Engine's per-job control block) and the PhaseProgram interpreter.
//
// The executor polls should_stop() at every phase boundary of a
// functional run (plus once before the first phase), so a cancel or an
// expired deadline is observed with bounded latency: one PHASE, not one
// grid. When the poll says stop, the interpreter abandons the run by
// throwing ExecutionInterrupted; the grid's contents are unspecified from
// that point (a retry re-runs the whole program — every cell is written
// by a full sweep, so a dirty grid is safe to reuse).
//
// RunControl is an interface rather than a struct of atomics so one
// virtual call per phase (phases are milliseconds; the call is
// nanoseconds) lets the api layer compose per-job state with engine-wide
// state (drain deadlines) without the executor knowing either exists.
#pragma once

#include <stdexcept>

namespace wavetune::core {

class RunControl {
public:
  enum class Stop {
    kNone,       ///< keep going
    kCancelled,  ///< caller (or engine shutdown) revoked the job
    kDeadline,   ///< the job's own deadline expired
  };

  virtual ~RunControl() = default;

  /// Polled by the interpreter at phase boundaries; must be cheap and
  /// callable from any thread.
  virtual Stop should_stop() const = 0;
};

/// Thrown by the interpreter when should_stop() asks it to abandon a run.
/// api::Engine converts it to the client-facing typed exceptions
/// (api::JobCancelled / api::JobTimedOut).
class ExecutionInterrupted : public std::runtime_error {
public:
  explicit ExecutionInterrupted(RunControl::Stop reason)
      : std::runtime_error(reason == RunControl::Stop::kDeadline
                               ? "execution interrupted: deadline expired"
                               : "execution interrupted: cancelled"),
        reason_(reason) {}

  RunControl::Stop reason() const { return reason_; }

private:
  RunControl::Stop reason_;
};

}  // namespace wavetune::core
