// Tile-granular kernel ABI and plan-time kernel lowering.
//
// This is the third, widest rung of the kernel ABI ladder (see
// core/spec.hpp for the full ladder: cell -> segment -> tile). A
// TileKernel computes a whole rows x cols block in ONE call, and a
// LoweredKernel is the plan-time resolution of a WavefrontSpec onto that
// ABI: a plain C function pointer plus an opaque context — no
// std::function anywhere in the dispatch path. The execution engine
// resolves a spec ONCE (api::Engine::compile, or the top of
// HybridExecutor::run) and threads the LoweredKernel by reference through
// every scheduler, so the per-tile hot-loop cost is exactly one indirect
// call with the row loop, neighbour-pointer advance, and band clamping
// inlined inside it.
#pragma once

#include <cstddef>
#include <memory>

#include "core/diag.hpp"

namespace wavetune::core {

/// Raw tile-kernel entry point.
///
/// Computes every cell of the rows x cols block [i0, i1) x [j0, j1) in one
/// call, row-major (which respects the wavefront dependencies inside the
/// block), into row-major full-grid storage. `row_stride` is the byte
/// stride between consecutive grid rows (dim * elem_bytes); cell (i, j) of
/// the block lives at out + (i - i0) * row_stride + (j - j0) * elem_bytes.
///
/// Pointer contract (all pointers are into the same row-major storage,
/// mirroring core::SegmentKernel):
///   - `out` points at cell (i0, j0).
///   - `north` points at cell (i0-1, j0); null iff i0 == 0. Rows below the
///     first read their north neighbours from the block's own output.
///   - `west` points at cell (i0, j0-1); null iff j0 == 0. The west column
///     is strided: the west neighbour of row i is west + (i-i0)*row_stride.
///   - `northwest` points at cell (i0-1, j0-1); null iff i0 == 0 or
///     j0 == 0.
///
/// The kernel must be pure in the neighbours and safe to call concurrently
/// for independent blocks of one wavefront step. `ctx` is the opaque
/// captured state (owned by the TileKernel / LoweredKernel that carries
/// this function).
using TileKernelFn = void (*)(const void* ctx, std::size_t i0, std::size_t i1,
                              std::size_t j0, std::size_t j1, std::size_t row_stride,
                              const std::byte* west, const std::byte* north,
                              const std::byte* northwest, std::byte* out);

/// A tile kernel: plain function pointer + shared ownership of whatever
/// state the function reads. Deliberately NOT a std::function — invoking
/// it is one indirect call, and the hot loops never touch the shared_ptr.
struct TileKernel {
  TileKernelFn fn = nullptr;
  std::shared_ptr<const void> ctx;  ///< owns the state `fn` reads (may be null)

  explicit operator bool() const { return fn != nullptr; }
};

/// A WavefrontSpec resolved for dispatch: the tile entry point (native or
/// the fallback adapter built at lowering time), the grid geometry the
/// pointer math needs, and cold-path ownership of the context. Built by
/// WavefrontSpec::lower() exactly once per compiled plan / run; the
/// schedulers receive it by reference and dispatch through `fn`/`ctx`
/// only.
struct LoweredKernel {
  TileKernelFn fn = nullptr;
  const void* ctx = nullptr;
  std::size_t dim = 0;         ///< grid side; row stride = dim * elem_bytes
  std::size_t elem_bytes = 0;
  bool native = false;         ///< spec shipped a native TileKernel (no
                               ///< type-erased calls anywhere inside `fn`)
  std::shared_ptr<const void> keepalive;  ///< cold: owns `ctx`

  explicit operator bool() const { return fn != nullptr; }

  /// One raw call computing the full block [i0, i1) x [j0, j1) of
  /// `storage` (a full-grid-shaped, row-major byte array). The neighbour
  /// pointers are derived here, branch-free except for the border nulls.
  void block(std::byte* storage, std::size_t i0, std::size_t i1, std::size_t j0,
             std::size_t j1) const {
    const std::size_t stride = dim * elem_bytes;
    std::byte* out = storage + i0 * stride + j0 * elem_bytes;
    const std::byte* w = j0 > 0 ? out - elem_bytes : nullptr;
    const std::byte* n = i0 > 0 ? out - stride : nullptr;
    const std::byte* nw = (i0 > 0 && j0 > 0) ? out - stride - elem_bytes : nullptr;
    fn(ctx, i0, i1, j0, j1, stride, w, n, nw, out);
  }

  /// Band-clamped tile dispatch: computes the cells of the block
  /// [i0, i1) x [j0, j1) whose diagonal i + j lies in [d_begin, d_end).
  /// A tile fully inside the band — the common case of every full sweep
  /// and every interior tile of a banded phase — is ONE block() call; a
  /// tile straddling a band edge degrades to one call per clamped row.
  /// Requires i0 < i1 <= dim and j0 < j1 <= dim.
  void tile(std::byte* storage, std::size_t i0, std::size_t i1, std::size_t j0,
            std::size_t j1, std::size_t d_begin, std::size_t d_end) const {
    // Fully in band iff the top-left cell is past d_begin and the
    // bottom-right cell is before d_end.
    if (d_begin <= i0 + j0 && (i1 - 1) + j1 <= d_end) {
      block(storage, i0, i1, j0, j1);
      return;
    }
    for (std::size_t i = i0; i < i1; ++i) {
      if (d_end <= i) break;
      const auto [j_lo, j_hi] = row_band_span(i, d_begin, d_end, j0, j1);
      if (j_lo < j_hi) block(storage, i, i + 1, j_lo, j_hi);
    }
  }

  /// Strip-local block dispatch: same contract as block(), but `base`
  /// points at grid row `base_row` of a row-window buffer (full width,
  /// full row stride, holding only rows [base_row, ...)). The kernel
  /// still receives ABSOLUTE i0/j0 — apps index payloads by them — only
  /// the storage addressing is rebased. Requires i0 >= base_row, and
  /// i0 > base_row (or i0 == 0) for the north/northwest pointers to stay
  /// inside the buffer; the streaming executor guarantees that by
  /// placing each strip's halo row at the window's first row. No pointer
  /// before `base` is ever formed (base - base_row*stride could be far
  /// out of bounds, which is UB even unread).
  void block_local(std::byte* base, std::size_t base_row, std::size_t i0, std::size_t i1,
                   std::size_t j0, std::size_t j1) const {
    const std::size_t stride = dim * elem_bytes;
    std::byte* out = base + (i0 - base_row) * stride + j0 * elem_bytes;
    const std::byte* w = j0 > 0 ? out - elem_bytes : nullptr;
    const std::byte* n = i0 > 0 ? out - stride : nullptr;
    const std::byte* nw = (i0 > 0 && j0 > 0) ? out - stride - elem_bytes : nullptr;
    fn(ctx, i0, i1, j0, j1, stride, w, n, nw, out);
  }

  /// Strip-local band-clamped tile dispatch: tile() against a row-window
  /// buffer (see block_local for the base/base_row contract).
  void tile_local(std::byte* base, std::size_t base_row, std::size_t i0, std::size_t i1,
                  std::size_t j0, std::size_t j1, std::size_t d_begin,
                  std::size_t d_end) const {
    if (d_begin <= i0 + j0 && (i1 - 1) + j1 <= d_end) {
      block_local(base, base_row, i0, i1, j0, j1);
      return;
    }
    for (std::size_t i = i0; i < i1; ++i) {
      if (d_end <= i) break;
      const auto [j_lo, j_hi] = row_band_span(i, d_begin, d_end, j0, j1);
      if (j_lo < j_hi) block_local(base, base_row, i, i + 1, j_lo, j_hi);
    }
  }
};

/// A storage view the CPU schedulers dispatch through: `base` addresses
/// grid row `base_row`, column 0, with the full dim*elem_bytes row
/// stride. {grid.data(), 0} is the whole-grid view; a streaming strip
/// hands the schedulers {strip_buffer, first_resident_row} instead and
/// every kernel still sees absolute coordinates.
struct StorageView {
  std::byte* base = nullptr;
  std::size_t base_row = 0;
};

}  // namespace wavetune::core
