// Input and tunable parameters of a wavefront instance — paper Tables 1 & 2.
//
// Input parameters (Table 1): dim, tsize, dsize.
// Tunable parameters (Table 2): cpu-tile, band, gpu-count, gpu-tile, halo.
//
// Following the paper (§3.1.1), gpu-count is *encoded* in band and halo
// rather than stored separately: band == -1 means no GPU at all; band >= 0
// with halo == -1 means one GPU; band >= 0 with halo >= 0 means two GPUs.
#pragma once

#include <cstddef>
#include <string>

#include "util/json.hpp"

namespace wavetune::core {

/// Paper Table 1: characteristics of a wavefront instance.
struct InputParams {
  std::size_t dim = 0;  ///< width of the (square) array
  double tsize = 0.0;   ///< per-element granularity, in reference-core units
  int dsize = 0;        ///< number of 8-byte floats in the element payload

  /// Element size in bytes: two 4-byte ints plus dsize 8-byte floats,
  /// matching the paper's "dsize=5 means 8 + 5*8 = 48 bytes".
  std::size_t elem_bytes() const { return 8 + static_cast<std::size_t>(dsize) * 8; }

  void validate() const;
  std::string describe() const;

  util::Json to_json() const;
  static InputParams from_json(const util::Json& j);

  bool operator==(const InputParams&) const = default;
};

/// Paper Table 2: the autotuner's outputs.
struct TunableParams {
  int cpu_tile = 8;     ///< side length of the square CPU tiles (>= 1)
  long long band = -1;  ///< diagonals on each side of the main diagonal on GPU; -1 = no GPU
  long long halo = -1;  ///< dual-GPU halo size; -1 = single GPU (when band >= 0)
  int gpu_tile = 1;     ///< GPU work-group tile side; 1 = untiled

  /// Extension beyond the paper (its §6 future work: "incorporating more
  /// than two GPUs"): explicit device count. 0 keeps the paper's band/halo
  /// encoding; >= 3 requests an N-way row split with chained halo
  /// exchanges (band must be >= 0 and halo >= 0).
  int gpus = 0;

  /// Derived gpu-count: the paper's encoding, unless `gpus` overrides it.
  int gpu_count() const {
    if (band < 0) return 0;
    if (gpus >= 2) return gpus;
    if (gpus == 1) return 1;
    return halo < 0 ? 1 : 2;
  }

  bool uses_gpu() const { return band >= 0; }
  bool dual_gpu() const { return gpu_count() == 2; }
  bool gpu_tiled() const { return uses_gpu() && gpu_tile > 1; }

  /// First (inclusive) and one-past-last GPU diagonals for a given dim;
  /// both zero-width when band == -1. Requires a normalized value.
  std::size_t gpu_d_begin(std::size_t dim) const;
  std::size_t gpu_d_end(std::size_t dim) const;

  /// Maximum meaningful halo for a given dim/band: half the length of the
  /// first offloaded diagonal (paper Table 3), also bounded by the fixed
  /// row split at dim/2.
  static long long max_halo(std::size_t dim, long long band);

  /// Maximum halo for an N-way split: one less than the narrowest row
  /// band, so every exchanged strip is owned by a single upstream device.
  static long long max_halo_multi(std::size_t dim, long long band, int gpus);

  /// Canonicalises the parameters for a dim x dim instance:
  ///  * cpu_tile clamped to [1, dim];
  ///  * band  < 0 collapses to the pure-CPU config (halo = -1, gpu_tile = 1);
  ///  * band clamped to [0, dim-1] (values beyond cover the whole grid);
  ///  * halo clamped to [-1, max_halo(dim, band)];
  ///  * gpu_tile clamped to [1, dim]; dual-GPU configs force gpu_tile = 1
  ///    (see DESIGN.md: intra-GPU tiling is explored on single-GPU
  ///    schedules; the paper's own search found gpu-tile effectively
  ///    binary).
  TunableParams normalized(std::size_t dim) const;

  /// True if normalized(dim) would return *this unchanged.
  bool is_normalized(std::size_t dim) const;

  std::string describe() const;

  util::Json to_json() const;
  static TunableParams from_json(const util::Json& j);

  bool operator==(const TunableParams&) const = default;
};

}  // namespace wavetune::core
