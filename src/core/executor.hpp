// The hybrid three-phase wavefront executor — the paper's §2 strategy.
//
//   Phase 1 (CPU): diagonals [0, d0) tiled-parallel across the cores.
//   Phase 2 (GPU): diagonals [d0, d1) — the band of 2*band+1 diagonals
//                  centred on the main diagonal — on 1 or 2 simulated GPUs,
//                  untiled (one kernel per diagonal) or tiled (work-groups
//                  of gpu_tile x gpu_tile cells, one kernel per
//                  tile-diagonal). Dual-GPU schedules split each diagonal
//                  at the fixed row s = dim/2 and exchange halo strips
//                  through host memory every halo+1 diagonals.
//   Phase 3 (CPU): diagonals [d1, 2*dim-1) tiled-parallel.
//
// run() executes the computation functionally (real values, real threads
// for the CPU phases) while charging simulated time; estimate() walks the
// identical schedule charging time only. Both produce the same simulated
// rtime by construction — a property the test suite checks.
#pragma once

#include <cstddef>
#include <memory>

#include "core/grid.hpp"
#include "core/params.hpp"
#include "core/spec.hpp"
#include "cpu/dataflow_wavefront.hpp"
#include "cpu/thread_pool.hpp"
#include "sim/system_profile.hpp"

namespace wavetune::ocl {
class Trace;
}

namespace wavetune::core {

/// Simulated-time accounting of one execution.
struct PhaseBreakdown {
  double phase1_ns = 0.0;  ///< CPU tiled phase before the band
  double gpu_ns = 0.0;     ///< whole GPU phase (transfers + kernels + swaps)
  double phase3_ns = 0.0;  ///< CPU tiled phase after the band

  // Informational detail of the GPU phase (already included in gpu_ns):
  double transfer_in_ns = 0.0;
  double transfer_out_ns = 0.0;
  double swap_ns = 0.0;
  std::size_t kernel_launches = 0;
  std::size_t swap_count = 0;
  std::size_t redundant_cells = 0;  ///< halo cells computed twice

  double total_ns() const { return phase1_ns + gpu_ns + phase3_ns; }
};

struct RunResult {
  PhaseBreakdown breakdown;
  double rtime_ns = 0.0;        ///< == breakdown.total_ns()
  TunableParams params;         ///< normalized parameters actually executed
};

class HybridExecutor {
public:
  /// `pool_workers == 0` sizes the pool from hardware_concurrency.
  explicit HybridExecutor(sim::SystemProfile profile, std::size_t pool_workers = 0);

  const sim::SystemProfile& profile() const { return profile_; }

  /// Functionally computes every cell of `grid` (whose dimensions must
  /// match the spec) under the given tuning, and returns the simulated
  /// timing. Throws std::invalid_argument on spec/grid mismatch or if the
  /// tuning requests more GPUs than the profile has. A non-null `trace`
  /// receives every GPU-phase command (see ocl/trace.hpp). `scheduler`
  /// selects the CPU-phase discipline for phases 1 and 3: the paper's
  /// barriered tile-diagonal sweep (default) or the dependency-counter
  /// dataflow scheduler (cpu/dataflow_wavefront.hpp); both compute
  /// bit-identical grids.
  ///
  /// `lowered` is the plan-time kernel resolution (core/lowered.hpp):
  /// callers that compiled the spec once (api::Engine plans) pass their
  /// cached LoweredKernel so repeated runs skip re-lowering; when null,
  /// the spec is lowered once at the top of the call — never inside any
  /// per-tile, per-diagonal, or per-phase loop.
  RunResult run(const WavefrontSpec& spec, const TunableParams& params, Grid& grid,
                ocl::Trace* trace = nullptr,
                cpu::Scheduler scheduler = cpu::Scheduler::kBarrier,
                const LoweredKernel* lowered = nullptr);

  /// Simulated timing of the same schedule, without functional execution.
  RunResult estimate(const InputParams& in, const TunableParams& params,
                     ocl::Trace* trace = nullptr,
                     cpu::Scheduler scheduler = cpu::Scheduler::kBarrier) const;

  /// Optimized sequential baseline: functional + simulated timing. Same
  /// `lowered` contract as run().
  RunResult run_serial(const WavefrontSpec& spec, Grid& grid,
                       const LoweredKernel* lowered = nullptr) const;

  /// Simulated time of the sequential baseline.
  double estimate_serial(const InputParams& in) const;

private:
  sim::SystemProfile profile_;
  mutable cpu::ThreadPool pool_;

  struct FunctionalCtx;  // run-mode state (spec, host grid, device buffers)

  RunResult execute(const InputParams& in, const TunableParams& params, FunctionalCtx* fctx,
                    ocl::Trace* trace, cpu::Scheduler scheduler) const;

  void gpu_phase(const InputParams& in, const TunableParams& p, FunctionalCtx* fctx,
                 ocl::Trace* trace, PhaseBreakdown& out) const;
  void gpu_phase_single(const InputParams& in, const TunableParams& p, FunctionalCtx* fctx,
                        ocl::Trace* trace, PhaseBreakdown& out) const;
  /// N-way row split (N >= 2) with chained halo exchanges; N == 2 is the
  /// paper's dual-GPU schedule, N >= 3 the §6 future-work extension.
  void gpu_phase_multi(const InputParams& in, const TunableParams& p, int n_gpus,
                       FunctionalCtx* fctx, ocl::Trace* trace, PhaseBreakdown& out) const;
};

}  // namespace wavetune::core
