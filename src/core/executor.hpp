// The hybrid wavefront executor: a single interpreter over a
// core::PhaseProgram (core/phase_program.hpp).
//
// The paper's §2 strategy — CPU tiled before the band, the GPU band
// (single or multi device), CPU tiled after — is the DEFAULT program that
// core::plan_phases compiles from a TunableParams tuning; the executor
// itself knows nothing about that shape. It walks whatever valid program
// it is handed, phase by phase:
//
//   kCpu        diagonals [d_begin, d_end) tiled-parallel across the
//               cores, under the phase's scheduler (barriered sweep or
//               dependency-counter dataflow).
//   kGpuSingle  the range on one simulated GPU, untiled (one kernel per
//               diagonal) or tiled (work-groups of gpu_tile x gpu_tile
//               cells, one kernel per tile-diagonal).
//   kGpuMulti   N-way fixed row split at rows dim*g/N with chained halo
//               exchanges through host memory every halo+1 diagonals.
//
// run() interprets the program functionally (real values, real threads
// for the CPU phases) while charging simulated time; estimate() interprets
// the IDENTICAL program charging time only. Parity is structural: both are
// the same walk of the same data, differing only in whether a functional
// context is attached — a property the test suite still checks over
// randomized programs.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <vector>

#include "core/checkpoint.hpp"
#include "core/grid.hpp"
#include "core/params.hpp"
#include "core/phase_program.hpp"
#include "core/run_control.hpp"
#include "core/spec.hpp"
#include "cpu/dataflow_wavefront.hpp"
#include "cpu/thread_pool.hpp"
#include "sim/system_profile.hpp"

namespace wavetune::ocl {
class Trace;
}

namespace wavetune::core {

/// Simulated-time accounting of one executed phase.
struct PhaseTiming {
  PhaseDevice device = PhaseDevice::kCpu;
  std::size_t d_begin = 0;  ///< diagonal range the phase covered
  std::size_t d_end = 0;
  double ns = 0.0;  ///< simulated time of the whole phase

  /// MEASURED wall time of the phase (steady_clock), populated only in
  /// run mode — exactly 0 on estimate(), which executes nothing. This is
  /// what the profile subsystem (src/profile/) aggregates and compares
  /// against `ns` to close the measure -> attribute -> replan loop.
  double wall_ns = 0.0;

  // GPU-phase detail (already included in ns; zero for CPU phases):
  double transfer_in_ns = 0.0;
  double transfer_out_ns = 0.0;
  double swap_ns = 0.0;
  std::size_t kernel_launches = 0;
  std::size_t swap_count = 0;
  std::size_t redundant_cells = 0;  ///< halo cells computed twice

  // Streaming-strip detail (zero for whole-grid phases):
  std::size_t strips = 0;  ///< row strips the phase executed as
  /// Simulated time of the SAME strip schedule with a 1-buffer pool (no
  /// transfer/compute overlap) — the serialized-strip baseline charged by
  /// a second timing-only walk. ns <= serialized_ns; the difference is
  /// the simulated overlap the double buffering bought. Equal to ns for
  /// streamed CPU phases (host strips have nothing to overlap).
  double serialized_ns = 0.0;
  /// Sum of this phase's simulated kernel durations (streamed GPU phases
  /// only) — the denominator bound for the overlap ratio.
  double kernel_busy_ns = 0.0;
};

/// Simulated-time accounting of one execution: one PhaseTiming per program
/// phase, in execution order. The legacy three-phase fields
/// (phase1/gpu/phase3) are DERIVED accessors over the vector — for the
/// paper's default program they mean exactly what they always did; for
/// arbitrary programs they partition the total as documented.
struct PhaseBreakdown {
  std::vector<PhaseTiming> phases;

  double total_ns() const;
  /// Measured wall time summed over every phase (0 for estimates).
  double total_wall_ns() const;

  /// CPU time before the first GPU phase (all CPU time for pure-CPU
  /// programs) — the paper's "phase 1".
  double phase1_ns() const;
  /// Total GPU time (transfers + kernels + swaps) across every GPU phase.
  double gpu_ns() const;
  /// CPU time from the first GPU phase onward — the paper's "phase 3".
  /// phase1_ns() + gpu_ns() + phase3_ns() == total_ns() for any program.
  double phase3_ns() const;

  // GPU-phase detail, summed over every GPU phase:
  double transfer_in_ns() const;
  double transfer_out_ns() const;
  double swap_ns() const;
  std::size_t kernel_launches() const;
  std::size_t swap_count() const;
  std::size_t redundant_cells() const;
};

struct RunResult {
  PhaseBreakdown breakdown;
  double rtime_ns = 0.0;  ///< == breakdown.total_ns()
  double wall_ns = 0.0;   ///< == breakdown.total_wall_ns(); 0 for estimates
  TunableParams params;   ///< normalized parameters the program was built from
};

/// One job of a fused batch: its grid plus its (optional) cancellation/
/// deadline control. Grids must be distinct objects matching the spec.
struct BatchMember {
  Grid* grid = nullptr;
  const RunControl* control = nullptr;
};

/// Per-member outcome of run_batch. `stop == kNone` means the member ran
/// to completion and `result` is valid (bit-identical grid and simulated
/// timing to a lone run); otherwise the member was shed at a phase
/// boundary — its grid contents are unspecified, mirroring what
/// ExecutionInterrupted means on the single-run path.
struct BatchOutcome {
  RunResult result;
  RunControl::Stop stop = RunControl::Stop::kNone;
};

/// Checkpoint/resume plumbing for a streamed run() (single-grid path).
/// Strip boundaries are the checkpoint points: after each strip's results
/// land in the host grid, `on_checkpoint` (if set, and the cadence says
/// so) receives a consistent RunCheckpoint snapshot. A non-null `resume`
/// makes the run SKIP the functional work before the checkpoint's
/// (phase, strip) cursor — the grid is restored from the snapshot first —
/// while still charging the FULL simulated schedule, so the RunResult's
/// simulated fields stay a pure function of (inputs, program).
struct StreamControl {
  /// Snapshot to resume from; validated against the program's describe()
  /// digest and the grid geometry (throws CheckpointError on mismatch).
  const RunCheckpoint* resume = nullptr;
  /// Called after every `checkpoint_every_strips`-th completed strip of a
  /// streamed phase (and never in estimate mode or fused batches).
  std::function<void(const RunCheckpoint&)> on_checkpoint;
  std::size_t checkpoint_every_strips = 1;
};

class HybridExecutor {
public:
  /// `pool_workers == 0` sizes the pool from hardware_concurrency.
  explicit HybridExecutor(sim::SystemProfile profile, std::size_t pool_workers = 0);

  const sim::SystemProfile& profile() const { return profile_; }

  /// Functionally computes every cell of `grid` (whose dimensions must
  /// match the spec) by interpreting `program`, and returns the simulated
  /// timing. Throws std::invalid_argument on spec/grid/program mismatch or
  /// if any phase requests more GPUs than the profile has. A non-null
  /// `trace` receives every GPU-phase command (see ocl/trace.hpp).
  ///
  /// `lowered` is the plan-time kernel resolution (core/lowered.hpp):
  /// callers that compiled the spec once (api::Engine plans) pass their
  /// cached LoweredKernel so repeated runs skip re-lowering; when null,
  /// the spec is lowered once at the top of the call — never inside any
  /// per-tile, per-diagonal, or per-phase loop.
  ///
  /// A non-null `control` is polled at every phase boundary (and once
  /// before the first phase): when it asks to stop, the run is abandoned
  /// by throwing core::ExecutionInterrupted and the grid's contents are
  /// unspecified (core/run_control.hpp). Cancellation latency is
  /// therefore bounded by one phase, not one grid.
  /// A non-null `stream` enables strip-boundary checkpointing and/or
  /// resume (see StreamControl); it only has effect on programs with
  /// streamed phases.
  RunResult run(const WavefrontSpec& spec, const PhaseProgram& program, Grid& grid,
                ocl::Trace* trace = nullptr, const LoweredKernel* lowered = nullptr,
                const RunControl* control = nullptr, const StreamControl* stream = nullptr);

  /// Continuous-batching entry point: interprets `program` ONCE for all
  /// members' grids. CPU phases drive every grid through one scheduling
  /// structure (one barrier sweep or one dep-counter graph, grids
  /// innermost); GPU phases run one simulated charging pass per phase
  /// with the functional transfers/kernels looped per member — so the
  /// per-phase fixed costs are paid once per batch, not once per grid.
  /// Each member keeps its own storage and simulated timing: a surviving
  /// member's grid and RunResult simulated fields are bit-identical to a
  /// lone run() of the same program (measured wall_ns is attributed as
  /// the fused phase wall divided by that phase's active member count).
  /// Members whose control asks to stop at a phase boundary are SHED from
  /// the batch (their BatchOutcome::stop records why) without aborting
  /// the rest; the call throws only on spec/program mismatch or a
  /// non-control execution failure (e.g. an injected fault), never for a
  /// member stop.
  std::vector<BatchOutcome> run_batch(const WavefrontSpec& spec, const PhaseProgram& program,
                                      const std::vector<BatchMember>& members,
                                      ocl::Trace* trace = nullptr,
                                      const LoweredKernel* lowered = nullptr);

  /// Simulated timing of the IDENTICAL program walk, without functional
  /// execution — the same interpreter as run(), minus the kernel calls.
  RunResult estimate(const InputParams& in, const PhaseProgram& program,
                     ocl::Trace* trace = nullptr) const;

  /// Convenience: compiles the paper's default program via
  /// core::plan_phases(spec.inputs(), params, scheduler) and runs it.
  RunResult run(const WavefrontSpec& spec, const TunableParams& params, Grid& grid,
                ocl::Trace* trace = nullptr,
                cpu::Scheduler scheduler = cpu::Scheduler::kBarrier,
                const LoweredKernel* lowered = nullptr);

  /// Convenience: compiles the same default program and estimates it —
  /// by construction the exact program the run() convenience executes.
  RunResult estimate(const InputParams& in, const TunableParams& params,
                     ocl::Trace* trace = nullptr,
                     cpu::Scheduler scheduler = cpu::Scheduler::kBarrier) const;

  /// Optimized sequential baseline: functional + simulated timing. Same
  /// `lowered` contract as run().
  RunResult run_serial(const WavefrontSpec& spec, Grid& grid,
                       const LoweredKernel* lowered = nullptr) const;

  /// Simulated time of the sequential baseline.
  double estimate_serial(const InputParams& in) const;

private:
  sim::SystemProfile profile_;
  mutable cpu::ThreadPool pool_;

  struct FunctionalCtx;  // run-mode state (spec, host grid, device buffers)

  /// THE interpreter: the only walk of a program. `fctx == nullptr` is
  /// timing-only mode (estimate); non-null executes functionally too.
  RunResult execute(const InputParams& in, const PhaseProgram& program, FunctionalCtx* fctx,
                    ocl::Trace* trace) const;

  void gpu_phase(const InputParams& in, const PhaseDesc& ph, FunctionalCtx* fctx,
                 std::size_t resume_strip, std::size_t phase_index, ocl::Trace* trace,
                 PhaseTiming& out) const;
  void gpu_phase_single(const InputParams& in, const PhaseDesc& ph, FunctionalCtx* fctx,
                        ocl::Trace* trace, PhaseTiming& out) const;
  /// Streamed single-GPU phase: W/H/K/R per strip through the fixed
  /// buffer pool (async staged uploads overlapping kernels when
  /// strip_buffers >= 2), plus a second timing-only 1-buffer walk for
  /// PhaseTiming::serialized_ns. `resume_strip` strips are charged but
  /// not functionally executed; `phase_index` labels checkpoints.
  void gpu_phase_single_streamed(const InputParams& in, const PhaseDesc& ph,
                                 FunctionalCtx* fctx, std::size_t resume_strip,
                                 std::size_t phase_index, ocl::Trace* trace,
                                 PhaseTiming& out) const;
  /// N-way row split (N >= 2) with chained halo exchanges; N == 2 is the
  /// paper's dual-GPU schedule, N >= 3 the §6 future-work extension.
  void gpu_phase_multi(const InputParams& in, const PhaseDesc& ph, FunctionalCtx* fctx,
                       ocl::Trace* trace, PhaseTiming& out) const;
};

}  // namespace wavetune::core
