#include "core/checkpoint.hpp"

#include <cstdio>
#include <cstring>

#include "fault/injector.hpp"

namespace wavetune::core {

namespace {

void put_u32(std::vector<std::byte>& out, std::uint32_t v) {
  const auto* p = reinterpret_cast<const std::byte*>(&v);
  out.insert(out.end(), p, p + sizeof v);
}

void put_u64(std::vector<std::byte>& out, std::uint64_t v) {
  const auto* p = reinterpret_cast<const std::byte*>(&v);
  out.insert(out.end(), p, p + sizeof v);
}

struct Cursor {
  std::span<const std::byte> bytes;
  std::size_t pos = 0;

  void need(std::size_t n) const {
    if (pos + n > bytes.size()) throw CheckpointError("checkpoint: truncated payload");
  }
  std::uint32_t u32() {
    need(4);
    std::uint32_t v;
    std::memcpy(&v, bytes.data() + pos, 4);
    pos += 4;
    return v;
  }
  std::uint64_t u64() {
    need(8);
    std::uint64_t v;
    std::memcpy(&v, bytes.data() + pos, 8);
    pos += 8;
    return v;
  }
};

}  // namespace

std::vector<std::byte> RunCheckpoint::serialize() const {
  std::vector<std::byte> out;
  out.reserve(4 + 4 + 8 * 6 + program_digest.size() + grid.size());
  put_u32(out, kMagic);
  put_u32(out, kVersion);
  put_u64(out, program_digest.size());
  const auto* dp = reinterpret_cast<const std::byte*>(program_digest.data());
  out.insert(out.end(), dp, dp + program_digest.size());
  put_u64(out, dim);
  put_u64(out, elem_bytes);
  put_u64(out, phase_index);
  put_u64(out, strip_index);
  put_u64(out, grid.size());
  out.insert(out.end(), grid.begin(), grid.end());
  return out;
}

RunCheckpoint RunCheckpoint::deserialize(std::span<const std::byte> bytes) {
  Cursor c{bytes};
  if (c.u32() != kMagic) throw CheckpointError("checkpoint: bad magic");
  if (c.u32() != kVersion) throw CheckpointError("checkpoint: unsupported version");
  RunCheckpoint cp;
  const std::size_t digest_len = c.u64();
  c.need(digest_len);
  cp.program_digest.assign(reinterpret_cast<const char*>(c.bytes.data() + c.pos), digest_len);
  c.pos += digest_len;
  cp.dim = c.u64();
  cp.elem_bytes = c.u64();
  cp.phase_index = c.u64();
  cp.strip_index = c.u64();
  const std::size_t grid_len = c.u64();
  c.need(grid_len);
  cp.grid.assign(c.bytes.begin() + static_cast<std::ptrdiff_t>(c.pos),
                 c.bytes.begin() + static_cast<std::ptrdiff_t>(c.pos + grid_len));
  c.pos += grid_len;
  if (cp.grid.size() != cp.dim * cp.dim * cp.elem_bytes) {
    throw CheckpointError("checkpoint: grid size does not match dim/elem_bytes");
  }
  return cp;
}

void RunCheckpoint::save_file(const std::string& path) const {
  fault::check(fault::Site::kCheckpointWrite);
  const std::vector<std::byte> bytes = serialize();
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (!f) throw CheckpointError("checkpoint: cannot open " + tmp + " for writing");
  const std::size_t written = std::fwrite(bytes.data(), 1, bytes.size(), f);
  const bool flushed = std::fclose(f) == 0;
  if (written != bytes.size() || !flushed) {
    std::remove(tmp.c_str());
    throw CheckpointError("checkpoint: short write to " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw CheckpointError("checkpoint: cannot rename " + tmp + " to " + path);
  }
}

RunCheckpoint RunCheckpoint::load_file(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) throw CheckpointError("checkpoint: cannot open " + path);
  std::vector<std::byte> bytes;
  std::byte buf[1 << 16];
  std::size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) {
    bytes.insert(bytes.end(), buf, buf + n);
  }
  const bool ok = std::ferror(f) == 0;
  std::fclose(f);
  if (!ok) throw CheckpointError("checkpoint: read error on " + path);
  return deserialize(bytes);
}

void RunCheckpoint::validate_against(const std::string& digest, std::size_t want_dim,
                                     std::size_t want_elem_bytes) const {
  if (program_digest != digest) {
    throw CheckpointError("checkpoint: program digest mismatch (saved under \"" +
                          program_digest + "\", resuming under \"" + digest + "\")");
  }
  if (dim != want_dim || elem_bytes != want_elem_bytes) {
    throw CheckpointError("checkpoint: grid geometry mismatch");
  }
}

}  // namespace wavetune::core
