#include "core/streaming.hpp"

#include <algorithm>
#include <limits>
#include <string>
#include <vector>

#include "core/diag.hpp"

namespace wavetune::core {

std::size_t whole_grid_resident_bytes(std::size_t dim, std::size_t elem_bytes) {
  return dim * dim * elem_bytes;
}

std::size_t streamed_resident_bytes(std::size_t dim, std::size_t elem_bytes,
                                    std::size_t strip_rows, std::size_t strip_buffers) {
  return strip_buffers * (strip_rows + 1) * dim * elem_bytes;
}

std::size_t max_strip_rows_for_cap(std::size_t dim, std::size_t elem_bytes, std::size_t cap,
                                   std::size_t strip_buffers) {
  const std::size_t row_bytes = dim * elem_bytes;
  const std::size_t pool_rows = cap / (strip_buffers * row_bytes);  // strip_rows + 1 halo
  if (pool_rows < 2) {
    throw StreamingPlanError(
        "streaming: max_resident_bytes " + std::to_string(cap) + " cannot hold even a " +
        std::to_string(strip_buffers) + "-buffer pool of 1-row strips for dim " +
        std::to_string(dim) + " (needs " +
        std::to_string(streamed_resident_bytes(dim, elem_bytes, 1, strip_buffers)) + " bytes)");
  }
  return std::min(pool_rows - 1, dim);
}

double estimate_streamed_gpu_phase_ns(std::size_t dim, std::size_t elem_bytes,
                                      double tsize_units, std::size_t d_begin,
                                      std::size_t d_end, std::size_t strip_rows,
                                      std::size_t strip_buffers, const sim::GpuModel& gpu,
                                      const sim::PcieModel& pcie) {
  const std::size_t strips = (dim + strip_rows - 1) / strip_rows;
  const std::size_t frontier_lo = d_begin >= 2 ? d_begin - 2 : 0;
  std::vector<double> done(strips, 0.0);
  double pcie_avail = 0.0;
  double queue_avail = 0.0;
  double end = 0.0;
  for (std::size_t s = 0; s < strips; ++s) {
    const std::size_t r0 = s * strip_rows;
    const std::size_t r1 = std::min(dim, r0 + strip_rows);
    std::size_t up_cells = 0;    // frontier + band cells staged in
    std::size_t down_cells = 0;  // band cells read back
    for (std::size_t i = r0; i < r1; ++i) {
      const auto [ulo, uhi] = row_band_span(i, frontier_lo, d_end, 0, dim);
      if (ulo < uhi) up_cells += uhi - ulo;
      const auto [blo, bhi] = row_band_span(i, d_begin, d_end, 0, dim);
      if (blo < bhi) down_cells += bhi - blo;
    }
    if (down_cells == 0) continue;  // no band cells in this strip: skipped
    double kernel_ns = 0.0;
    for (std::size_t d = d_begin; d < d_end; ++d) {
      const std::size_t n = diag_rows_in(dim, d, r0, r1);
      // Planning approximation: untiled per-diagonal launches, three
      // neighbour reads + one write of global traffic per item.
      if (n > 0) kernel_ns += gpu.kernel_ns(n, tsize_units, 4 * elem_bytes);
    }
    double w_start = pcie_avail;
    if (s >= strip_buffers) w_start = std::max(w_start, done[s - strip_buffers]);
    const double w_end = w_start + pcie.transfer_ns(up_cells * elem_bytes);
    pcie_avail = w_end;
    const double k_end = std::max(queue_avail, w_end) + kernel_ns;
    queue_avail = k_end;
    const double r_end = std::max(pcie_avail, k_end) + pcie.transfer_ns(down_cells * elem_bytes);
    pcie_avail = r_end;
    done[s] = r_end;
    end = std::max(end, r_end);
  }
  return end;
}

PhaseProgram apply_residency_cap(PhaseProgram program, const InputParams& in,
                                 const PlanConstraints& constraints) {
  if (constraints.max_resident_bytes == 0) return program;
  const std::size_t elem = in.elem_bytes();
  if (whole_grid_resident_bytes(in.dim, elem) <= constraints.max_resident_bytes) {
    return program;
  }
  bool has_gpu_single = false;
  for (const PhaseDesc& ph : program.phases) {
    if (ph.device == PhaseDevice::kGpuMulti) {
      throw StreamingPlanError(
          "streaming: program has a multi-GPU phase whose whole-grid footprint exceeds "
          "max_resident_bytes; the multi-GPU path cannot stream");
    }
    if (ph.device == PhaseDevice::kGpuSingle) has_gpu_single = true;
  }
  // Pure-CPU programs keep the host grid only — nothing resides on the
  // device, so the cap is trivially met without strips.
  if (!has_gpu_single) return program;
  const std::size_t max_rows =
      max_strip_rows_for_cap(in.dim, elem, constraints.max_resident_bytes,
                             constraints.strip_buffers);

  // Cost-model arbitration over the fitting strip sizes: the residency
  // term fixed the ceiling (max_rows); the overlap term picks the best
  // size under it by walking each candidate's event schedule over every
  // single-GPU phase. Candidates halve down from the ceiling — the
  // makespan curve is monotone-ish in strip size, so a geometric probe
  // finds the knee without an exhaustive sweep.
  std::size_t best_rows = max_rows;
  double best_ns = std::numeric_limits<double>::infinity();
  const sim::GpuModel gpu;    // planning uses the reference hardware model,
  const sim::PcieModel pcie;  // mirroring the executor's defaults
  for (std::size_t cand = max_rows; cand >= 1; cand /= 2) {
    double total = 0.0;
    for (const PhaseDesc& ph : program.phases) {
      if (ph.device != PhaseDevice::kGpuSingle) continue;
      total += estimate_streamed_gpu_phase_ns(in.dim, elem, in.tsize, ph.d_begin, ph.d_end,
                                              cand, constraints.strip_buffers, gpu, pcie);
    }
    if (total < best_ns) {
      best_ns = total;
      best_rows = cand;
    }
    if (cand == 1) break;
  }
  return apply_strips(std::move(program), best_rows, constraints.strip_buffers);
}

PhaseProgram plan_phases_streamed(const InputParams& in, const TunableParams& params,
                                  cpu::Scheduler scheduler,
                                  const PlanConstraints& constraints) {
  return apply_residency_cap(plan_phases(in, params, scheduler), in, constraints);
}

}  // namespace wavetune::core
