// The phase-program execution IR: the schedule as data.
//
// The paper's §2 hybrid strategy — CPU tiled before the band, a GPU band,
// CPU tiled after — used to be control flow hard-coded into the executor,
// with run() and estimate() as two hand-kept-in-sync walks of that one
// shape. A PhaseProgram makes the schedule a value instead: an ordered
// vector of PhaseDesc, each naming a device, a diagonal range, and the
// device-specific tuning for that range. plan_phases() compiles a
// TunableParams tuning into the paper's three-phase program (the default
// shape is now just one producible program among many); the executor is a
// single interpreter over any valid program, in functional or
// timing-only mode, so run/estimate parity is structural rather than
// tested-by-convention.
//
// Validity (enforced by PhaseProgram::validate): the phases partition the
// diagonal range [0, 2*dim-1) exactly — contiguous, non-empty, in
// dependency order — so every cell is computed exactly once and every
// phase's inputs were produced by earlier phases (or are grid borders).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "core/params.hpp"
#include "cpu/dataflow_wavefront.hpp"

namespace wavetune::core {

/// Where one phase of the program executes.
enum class PhaseDevice {
  kCpu,       ///< tiled-parallel CPU sweep (barrier or dataflow scheduling)
  kGpuSingle, ///< one simulated GPU, untiled or work-group tiled
  kGpuMulti,  ///< N >= 2 GPUs, fixed row split with chained halo exchanges
};

/// "cpu" / "gpu-single" / "gpu-multi" (stable names used in JSON + logs).
const char* phase_device_name(PhaseDevice d);

/// One phase: a device plus the diagonal range [d_begin, d_end) it owns
/// and the tuning knobs that apply on that device.
struct PhaseDesc {
  PhaseDevice device = PhaseDevice::kCpu;
  std::size_t d_begin = 0;  ///< first diagonal (i+j) of the phase
  std::size_t d_end = 0;    ///< one past the last diagonal

  // CPU phases:
  cpu::Scheduler scheduler = cpu::Scheduler::kBarrier;  ///< phase discipline
  std::size_t cpu_tile = 1;  ///< side of the square CPU tiles (>= 1)

  // GPU phases:
  int gpu_count = 1;         ///< devices; must be >= 2 for kGpuMulti
  std::size_t gpu_tile = 1;  ///< work-group tile side; 1 = untiled
  long long halo = 0;        ///< multi-GPU redundancy depth (>= 0)

  // Streaming strips (out-of-core execution; 0 = off, whole-grid):
  // a phase with strip_rows > 0 executes as a sequence of row strips
  // [s*strip_rows, (s+1)*strip_rows) — exact-once row coverage by
  // construction, the row-axis analogue of the diagonal-band partition.
  // On kGpuSingle the strips stream through a fixed pool of
  // `strip_buffers` device buffers of (strip_rows+1) x dim elements
  // each (one halo row), so peak device residency is O(strip_rows*dim)
  // instead of O(dim^2); with strip_buffers >= 2 the next strip's
  // frontier upload overlaps the current strip's kernels on the
  // simulated DMA engine. strip_buffers == 1 is the serialized-strip
  // baseline. On kCpu the strips run back to back on the host grid
  // (no buffers), which is what makes strip boundaries checkpointable
  // on every device.
  std::size_t strip_rows = 0;    ///< rows per strip; 0 = whole-grid
  std::size_t strip_buffers = 2; ///< strip pool size (1..3); GPU only

  bool is_cpu() const { return device == PhaseDevice::kCpu; }
  bool is_gpu() const { return !is_cpu(); }
  bool streamed() const { return strip_rows > 0; }

  /// Number of row strips this phase executes as (1 when not streamed).
  std::size_t strip_count(std::size_t dim) const {
    return strip_rows == 0 ? 1 : (dim + strip_rows - 1) / strip_rows;
  }

  /// Throws std::invalid_argument on device-specific nonsense (empty
  /// range, zero tile, kGpuMulti with < 2 devices or negative halo, ...).
  void validate(std::size_t dim) const;
};

/// An ordered, validated schedule for one dim x dim wavefront instance.
struct PhaseProgram {
  std::size_t dim = 0;
  /// The tuning the program was compiled from (normalized) — carried for
  /// reporting (RunResult::params) and reproducibility; hand-built
  /// programs may leave it at the CPU-only default.
  TunableParams params;
  std::vector<PhaseDesc> phases;

  /// Throws std::invalid_argument unless the phases cover every diagonal
  /// of [0, 2*dim-1) exactly once, contiguously, in dependency order, and
  /// each phase passes its own device checks.
  void validate() const;

  /// Largest gpu_count any phase requests (0 for pure-CPU programs) — what
  /// the engine checks against the system profile at compile time.
  int max_gpu_count() const;

  std::size_t cpu_phase_count() const;
  std::size_t gpu_phase_count() const;

  /// Compact stable text form, e.g. "d79:cpu[0,10)b8;gpu1[10,69)t4;..." —
  /// used as a plan-cache key component and in bench/log output.
  std::string describe() const;
};

/// Compiles a tuning into the paper's schedule shape: CPU tiled before the
/// band, the GPU band (single or multi device), CPU tiled after — empty
/// phases omitted, so a band of -1 yields one whole-grid CPU phase and a
/// full band yields a single GPU phase. `scheduler` is the discipline of
/// every CPU phase (per-phase refinement lives in
/// autotune::tune_cpu_schedulers). `params` may be raw; it is normalized
/// for in.dim first. The returned program is validated.
PhaseProgram plan_phases(const InputParams& in, const TunableParams& params,
                         cpu::Scheduler scheduler = cpu::Scheduler::kBarrier);

/// A pure-CPU program of `n_phases` near-equal diagonal slices — the
/// simplest non-paper shape (N-phase CPU pipelining; a building block for
/// streaming strips). `n_phases` is clamped to the diagonal count.
PhaseProgram make_cpu_only_program(const InputParams& in, int cpu_tile, std::size_t n_phases,
                                   cpu::Scheduler scheduler = cpu::Scheduler::kBarrier);

/// Splits every GPU phase of `program` into `k` contiguous sub-bands of
/// near-equal diagonal count (each sub-band re-transfers its frontier, so
/// the split trades PCIe traffic for shorter device residency — the
/// phase-structure axis the autotuner can now search). `k` is clamped per
/// phase to the phase's width; k <= 1 returns the program unchanged.
PhaseProgram split_gpu_band(PhaseProgram program, std::size_t k);

/// Applies a streaming-strip axis to every CPU and single-GPU phase of
/// `program` (kGpuMulti phases are left whole-grid: the wedge split owns
/// the row axis there). `strip_rows` is clamped to the grid side;
/// strip_rows == 0 returns the program unchanged. The returned program is
/// validated; its describe() carries the strip suffix, so streamed and
/// whole-grid compilations of the same tuning never share a plan-cache
/// entry.
PhaseProgram apply_strips(PhaseProgram program, std::size_t strip_rows,
                          std::size_t strip_buffers = 2);

}  // namespace wavetune::core
