#include "core/params.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

#include "core/diag.hpp"

namespace wavetune::core {

void InputParams::validate() const {
  if (dim == 0) throw std::invalid_argument("InputParams: dim == 0");
  if (!std::isfinite(tsize)) throw std::invalid_argument("InputParams: non-finite tsize");
  if (tsize < 0.0) throw std::invalid_argument("InputParams: negative tsize");
  if (dsize < 0) throw std::invalid_argument("InputParams: negative dsize");
}

std::string InputParams::describe() const {
  std::ostringstream ss;
  ss << "dim=" << dim << " tsize=" << tsize << " dsize=" << dsize << " (" << elem_bytes()
     << " B/elem)";
  return ss.str();
}

util::Json InputParams::to_json() const {
  util::Json j = util::Json::object();
  j["dim"] = util::Json(dim);
  j["tsize"] = util::Json(tsize);
  j["dsize"] = util::Json(dsize);
  return j;
}

InputParams InputParams::from_json(const util::Json& j) {
  InputParams p;
  p.dim = static_cast<std::size_t>(j.at("dim").as_int());
  p.tsize = j.at("tsize").as_number();
  p.dsize = static_cast<int>(j.at("dsize").as_int());
  p.validate();
  return p;
}

std::size_t TunableParams::gpu_d_begin(std::size_t dim) const {
  if (band < 0) return 0;
  const auto main_d = static_cast<long long>(main_diagonal(dim));
  return static_cast<std::size_t>(std::max(0LL, main_d - band));
}

std::size_t TunableParams::gpu_d_end(std::size_t dim) const {
  if (band < 0) return 0;
  const auto main_d = static_cast<long long>(main_diagonal(dim));
  const auto last = static_cast<long long>(num_diagonals(dim));
  return static_cast<std::size_t>(std::min(last, main_d + band + 1));
}

long long TunableParams::max_halo(std::size_t dim, long long band) {
  if (band < 0) return -1;
  const long long clamped_band = std::min<long long>(band, static_cast<long long>(dim) - 1);
  // Length of the first offloaded diagonal d0 = dim-1-band is d0+1 = dim-band.
  const long long first_len = static_cast<long long>(dim) - clamped_band;
  const long long split = static_cast<long long>(dim / 2);
  return std::max(0LL, std::min(first_len / 2, split - 1));
}

long long TunableParams::max_halo_multi(std::size_t dim, long long band, int gpus) {
  if (band < 0 || gpus < 2) return -1;
  if (gpus == 2) return max_halo(dim, band);
  // Narrowest band of the N-way row split: the strip exchanged across a
  // boundary must lie entirely within the upstream device's ownership.
  long long narrowest = static_cast<long long>(dim);
  for (int g = 0; g < gpus; ++g) {
    const auto lo = static_cast<long long>(dim) * g / gpus;
    const auto hi = static_cast<long long>(dim) * (g + 1) / gpus;
    narrowest = std::min(narrowest, hi - lo);
  }
  const long long clamped_band = std::min<long long>(band, static_cast<long long>(dim) - 1);
  const long long first_len = static_cast<long long>(dim) - clamped_band;
  return std::max(0LL, std::min(first_len / 2, narrowest - 1));
}

TunableParams TunableParams::normalized(std::size_t dim) const {
  if (dim == 0) throw std::invalid_argument("TunableParams::normalized: dim == 0");
  TunableParams p = *this;
  p.cpu_tile = std::clamp(p.cpu_tile, 1, static_cast<int>(std::min<std::size_t>(dim, 1 << 20)));
  p.gpus = std::max(p.gpus, 0);
  if (p.band < 0) {
    p.band = -1;
    p.halo = -1;
    p.gpu_tile = 1;
    p.gpus = 0;
    return p;
  }
  p.band = std::min(p.band, static_cast<long long>(dim) - 1);
  if (p.gpus >= 3) {
    // N-way extension: needs a halo and more devices than rows allow.
    p.gpus = std::min<int>(p.gpus, static_cast<int>(std::min<std::size_t>(dim, 64)));
    p.halo = std::clamp(p.halo, 0LL, max_halo_multi(dim, p.band, p.gpus));
    p.gpu_tile = 1;
    return p;
  }
  if (p.gpus == 1) p.halo = -1;
  if (p.gpus == 2 && p.halo < 0) p.halo = 0;
  if (p.halo >= 0) {
    p.halo = std::min(p.halo, max_halo(dim, p.band));
    p.gpu_tile = 1;  // multi-GPU schedules run untiled (DESIGN.md §5)
  } else {
    p.halo = -1;
    p.gpu_tile = std::clamp(p.gpu_tile, 1, static_cast<int>(std::min<std::size_t>(dim, 1 << 20)));
  }
  return p;
}

bool TunableParams::is_normalized(std::size_t dim) const { return *this == normalized(dim); }

std::string TunableParams::describe() const {
  std::ostringstream ss;
  ss << "cpu-tile=" << cpu_tile << " band=" << band << " halo=" << halo
     << " gpu-tile=" << gpu_tile << " (gpu-count=" << gpu_count() << ")";
  return ss.str();
}

util::Json TunableParams::to_json() const {
  util::Json j = util::Json::object();
  j["cpu_tile"] = util::Json(cpu_tile);
  j["band"] = util::Json(band);
  j["halo"] = util::Json(halo);
  j["gpu_tile"] = util::Json(gpu_tile);
  if (gpus != 0) j["gpus"] = util::Json(gpus);
  return j;
}

TunableParams TunableParams::from_json(const util::Json& j) {
  TunableParams p;
  p.cpu_tile = static_cast<int>(j.at("cpu_tile").as_int());
  p.band = j.at("band").as_int();
  p.halo = j.at("halo").as_int();
  p.gpu_tile = static_cast<int>(j.at("gpu_tile").as_int());
  if (j.contains("gpus")) p.gpus = static_cast<int>(j.at("gpus").as_int());
  return p;
}

}  // namespace wavetune::core
