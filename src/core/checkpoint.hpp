// Strip-boundary run checkpoints.
//
// Streaming strips give every phase a sequence of points where the host
// grid is in a consistent prefix state: all cells of completed phases,
// plus all band cells of completed strips of the current phase, hold
// their final values, and nothing after them has been touched. A
// RunCheckpoint snapshots exactly that state — the grid bytes plus the
// (phase, strip) resume cursor and enough identity (program digest, grid
// geometry) to refuse resuming under a different plan.
//
// Resume semantics (see HybridExecutor): the resumed run SKIPS the
// functional work before the cursor but still charges the FULL simulated
// schedule — the simulated fields of a RunResult are a pure function of
// (inputs, program), checkpointed or not — while wall_ns reflects only
// the re-executed remainder.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace wavetune::core {

/// Malformed/mismatched checkpoint bytes (bad magic, truncated payload,
/// digest or geometry mismatch on resume, unwritable/unreadable file).
class CheckpointError : public std::runtime_error {
public:
  using std::runtime_error::runtime_error;
};

struct RunCheckpoint {
  static constexpr std::uint32_t kMagic = 0x30504357u;  // "WCP0", little-endian
  static constexpr std::uint32_t kVersion = 1u;

  /// PhaseProgram::describe() of the plan that produced the snapshot —
  /// resuming validates it so a checkpoint never silently continues
  /// under a different schedule (which would corrupt the grid).
  std::string program_digest;
  std::size_t dim = 0;
  std::size_t elem_bytes = 0;
  std::size_t phase_index = 0;  ///< next phase to execute on resume
  std::size_t strip_index = 0;  ///< next strip within that phase
  std::vector<std::byte> grid;  ///< host grid snapshot (dim*dim*elem_bytes)

  /// Self-describing binary image (host byte order; checkpoints are a
  /// same-machine kill/resume facility, not an interchange format).
  std::vector<std::byte> serialize() const;
  /// Throws CheckpointError on bad magic/version/truncation/size skew.
  static RunCheckpoint deserialize(std::span<const std::byte> bytes);

  /// serialize() to `path` atomically enough for the chaos suite: the
  /// write goes through a temp file renamed into place, and the
  /// fault::kCheckpointWrite site fires before any byte is written.
  void save_file(const std::string& path) const;
  static RunCheckpoint load_file(const std::string& path);

  /// Throws CheckpointError unless the snapshot matches the plan it is
  /// about to resume under.
  void validate_against(const std::string& digest, std::size_t want_dim,
                        std::size_t want_elem_bytes) const;
};

}  // namespace wavetune::core
