#include "core/grid.hpp"

#include <algorithm>
#include <stdexcept>

namespace wavetune::core {

Grid::Grid(std::size_t dim, std::size_t elem_bytes) : dim_(dim), elem_bytes_(elem_bytes) {
  if (dim == 0) throw std::invalid_argument("Grid: dim == 0");
  if (elem_bytes == 0) throw std::invalid_argument("Grid: elem_bytes == 0");
  storage_.assign(dim * dim * elem_bytes, std::byte{0});
}

void Grid::check(std::size_t i, std::size_t j) const {
  if (i >= dim_ || j >= dim_) throw std::out_of_range("Grid: cell index out of range");
}

std::size_t Grid::offset(std::size_t i, std::size_t j) const {
  check(i, j);
  return (i * dim_ + j) * elem_bytes_;
}

std::byte* Grid::cell(std::size_t i, std::size_t j) { return storage_.data() + offset(i, j); }

const std::byte* Grid::cell(std::size_t i, std::size_t j) const {
  return storage_.data() + offset(i, j);
}

void Grid::fill_zero() { std::fill(storage_.begin(), storage_.end(), std::byte{0}); }

void Grid::fill_poison() { std::fill(storage_.begin(), storage_.end(), kPoison); }

}  // namespace wavetune::core
