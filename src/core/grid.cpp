#include "core/grid.hpp"

#include <algorithm>
#include <stdexcept>

namespace wavetune::core {

Grid::Grid(std::size_t dim, std::size_t elem_bytes) : dim_(dim), elem_bytes_(elem_bytes) {
  if (dim == 0) throw std::invalid_argument("Grid: dim == 0");
  if (elem_bytes == 0) throw std::invalid_argument("Grid: elem_bytes == 0");
  storage_.assign(dim * dim * elem_bytes, std::byte{0});
}

void Grid::fill_zero() { std::fill(storage_.begin(), storage_.end(), std::byte{0}); }

void Grid::fill_poison() { std::fill(storage_.begin(), storage_.end(), kPoison); }

}  // namespace wavetune::core
