#include "core/executor.hpp"

#include <algorithm>
#include <chrono>
#include <climits>
#include <cstring>
#include <stdexcept>
#include <string>

#include "cpu/tiled_wavefront.hpp"
#include "fault/injector.hpp"
#include "ocl/context.hpp"

namespace wavetune::core {

namespace {

/// Sentinels for the multi-GPU validity frontier (see gpu_phase_multi).
constexpr long long kValidAll = LLONG_MIN / 4;   ///< every existing row valid
constexpr long long kValidNone = LLONG_MAX / 4;  ///< no row valid

long long ll(std::size_t v) { return static_cast<long long>(v); }

using WallClock = std::chrono::steady_clock;

double wall_since(WallClock::time_point t0) {
  return std::chrono::duration<double, std::nano>(WallClock::now() - t0).count();
}

}  // namespace

// --- PhaseBreakdown derived accessors ------------------------------------

double PhaseBreakdown::total_ns() const {
  double t = 0.0;
  for (const PhaseTiming& p : phases) t += p.ns;
  return t;
}

double PhaseBreakdown::total_wall_ns() const {
  double t = 0.0;
  for (const PhaseTiming& p : phases) t += p.wall_ns;
  return t;
}

double PhaseBreakdown::phase1_ns() const {
  double t = 0.0;
  for (const PhaseTiming& p : phases) {
    if (p.device != PhaseDevice::kCpu) break;  // first GPU phase ends "phase 1"
    t += p.ns;
  }
  return t;
}

double PhaseBreakdown::gpu_ns() const {
  double t = 0.0;
  for (const PhaseTiming& p : phases) {
    if (p.device != PhaseDevice::kCpu) t += p.ns;
  }
  return t;
}

double PhaseBreakdown::phase3_ns() const { return total_ns() - phase1_ns() - gpu_ns(); }

double PhaseBreakdown::transfer_in_ns() const {
  double t = 0.0;
  for (const PhaseTiming& p : phases) t += p.transfer_in_ns;
  return t;
}

double PhaseBreakdown::transfer_out_ns() const {
  double t = 0.0;
  for (const PhaseTiming& p : phases) t += p.transfer_out_ns;
  return t;
}

double PhaseBreakdown::swap_ns() const {
  double t = 0.0;
  for (const PhaseTiming& p : phases) t += p.swap_ns;
  return t;
}

std::size_t PhaseBreakdown::kernel_launches() const {
  std::size_t n = 0;
  for (const PhaseTiming& p : phases) n += p.kernel_launches;
  return n;
}

std::size_t PhaseBreakdown::swap_count() const {
  std::size_t n = 0;
  for (const PhaseTiming& p : phases) n += p.swap_count;
  return n;
}

std::size_t PhaseBreakdown::redundant_cells() const {
  std::size_t n = 0;
  for (const PhaseTiming& p : phases) n += p.redundant_cells;
  return n;
}

// --- executor -------------------------------------------------------------

/// Run-mode state: the spec plus one MEMBER per batched grid (a lone
/// run() is a batch of one). Each member owns its host grid, its control,
/// and one full-grid-shaped device buffer per GPU; device buffers are
/// poison-filled so that any read of a cell the schedule never
/// transferred or computed produces loudly-wrong values instead of
/// accidentally-correct zeros. `active` lists the members still running —
/// members shed by their control at a phase boundary leave the list
/// without aborting the rest of the batch.
struct HybridExecutor::FunctionalCtx {
  const WavefrontSpec* spec = nullptr;
  cpu::ThreadPool* pool = nullptr;
  /// Plan-time kernel resolution (core/lowered.hpp), resolved exactly
  /// once per run — by the caller's compiled plan or at the top of
  /// run(). Every functional compute is a plain indirect call through it.
  const LoweredKernel* lowered = nullptr;

  struct Member {
    Grid* host = nullptr;
    /// Cancellation/deadline poll (core/run_control.hpp); null on the
    /// control-free fast path.
    const RunControl* control = nullptr;
    std::vector<ocl::Buffer> dev;
    RunControl::Stop stop = RunControl::Stop::kNone;
  };
  std::vector<Member> members;
  std::vector<std::size_t> active;  ///< indices of members still running
  /// Active member count per EXECUTED phase, recorded by execute() in run
  /// mode — the denominator for fused wall-time attribution.
  std::vector<std::size_t> phase_active;
  /// Scratch for CPU phases: the active members' storages, rebuilt per
  /// phase (members can be shed between phases).
  std::vector<std::byte*> storages;

  std::size_t real_elem() const { return spec->elem_bytes; }
  std::size_t real_offset(std::size_t i, std::size_t j) const {
    return (i * spec->dim + j) * spec->elem_bytes;
  }

  /// Computes cell (i, j): a one-cell block (diagonal sweeps have no
  /// row-contiguous runs to batch).
  void compute_cell(std::byte* storage, std::size_t i, std::size_t j) const {
    lowered->block(storage, i, i + 1, j, j + 1);
  }

  /// Copies the cells of diagonals [d_begin, d_end) with rows in
  /// [row_begin, row_end) from `src` to `dst` (both full-grid-shaped).
  /// Each row's intersection with the diagonal band is one contiguous
  /// column span, so this is one memcpy per row, not one per cell.
  void copy_diag_rows(const std::byte* src, std::byte* dst, std::size_t d_begin,
                      std::size_t d_end, std::size_t row_begin, std::size_t row_end) const {
    const std::size_t dim = spec->dim;
    const std::size_t i_end = std::min(row_end, dim);
    for (std::size_t i = row_begin; i < i_end; ++i) {
      if (d_end <= i) break;  // spans only shrink as i grows
      const auto [j_lo, j_hi] = cpu::row_band_span(i, d_begin, d_end, 0, dim);
      if (j_lo >= j_hi) continue;
      const std::size_t off = real_offset(i, j_lo);
      std::memcpy(dst + off, src + off, (j_hi - j_lo) * real_elem());
    }
  }
};

HybridExecutor::HybridExecutor(sim::SystemProfile profile, std::size_t pool_workers)
    : profile_(std::move(profile)), pool_(pool_workers) {}

RunResult HybridExecutor::run(const WavefrontSpec& spec, const PhaseProgram& program,
                              Grid& grid, ocl::Trace* trace, const LoweredKernel* lowered,
                              const RunControl* control) {
  spec.validate();
  if (grid.dim() != spec.dim || grid.elem_bytes() != spec.elem_bytes) {
    throw std::invalid_argument("HybridExecutor::run: grid does not match spec");
  }
  // Kernel lowering happens HERE (or earlier, in the caller's compiled
  // plan) — once per run, never per tile/diagonal/phase.
  LoweredKernel local;
  if (!lowered) {
    local = spec.lower();
    lowered = &local;
  }
  FunctionalCtx fctx;
  fctx.spec = &spec;
  fctx.pool = &pool_;
  fctx.lowered = lowered;
  fctx.members.emplace_back();
  fctx.members[0].host = &grid;
  fctx.members[0].control = control;
  fctx.active.push_back(0);
  RunResult result = execute(spec.inputs(), program, &fctx, trace);
  // A lone run preserves the historical contract: a control stop is an
  // ExecutionInterrupted throw, not a shed.
  if (fctx.members[0].stop != RunControl::Stop::kNone) {
    throw ExecutionInterrupted(fctx.members[0].stop);
  }
  return result;
}

std::vector<BatchOutcome> HybridExecutor::run_batch(const WavefrontSpec& spec,
                                                    const PhaseProgram& program,
                                                    const std::vector<BatchMember>& members,
                                                    ocl::Trace* trace,
                                                    const LoweredKernel* lowered) {
  spec.validate();
  if (members.empty()) return {};
  for (const BatchMember& m : members) {
    if (!m.grid || m.grid->dim() != spec.dim || m.grid->elem_bytes() != spec.elem_bytes) {
      throw std::invalid_argument("HybridExecutor::run_batch: grid does not match spec");
    }
  }
  LoweredKernel local;
  if (!lowered) {
    local = spec.lower();
    lowered = &local;
  }
  FunctionalCtx fctx;
  fctx.spec = &spec;
  fctx.pool = &pool_;
  fctx.lowered = lowered;
  fctx.members.resize(members.size());
  fctx.active.reserve(members.size());
  for (std::size_t m = 0; m < members.size(); ++m) {
    fctx.members[m].host = members[m].grid;
    fctx.members[m].control = members[m].control;
    fctx.active.push_back(m);
  }
  // ONE interpretation of the program for the whole batch. The simulated
  // fields of `shared` are a pure function of (inputs, program) — exactly
  // what a lone run() of any member would report.
  const RunResult shared = execute(spec.inputs(), program, &fctx, trace);

  std::vector<BatchOutcome> out(members.size());
  for (std::size_t m = 0; m < members.size(); ++m) {
    out[m].stop = fctx.members[m].stop;
    if (out[m].stop != RunControl::Stop::kNone) continue;  // shed: no result
    RunResult r = shared;
    // Attribute the fused measured wall time: each phase's wall is split
    // evenly across the members that were active in it.
    for (std::size_t p = 0; p < r.breakdown.phases.size(); ++p) {
      r.breakdown.phases[p].wall_ns /= static_cast<double>(fctx.phase_active[p]);
    }
    r.wall_ns = r.breakdown.total_wall_ns();
    out[m].result = std::move(r);
  }
  return out;
}

RunResult HybridExecutor::estimate(const InputParams& in, const PhaseProgram& program,
                                   ocl::Trace* trace) const {
  in.validate();
  return execute(in, program, nullptr, trace);
}

RunResult HybridExecutor::run(const WavefrontSpec& spec, const TunableParams& params,
                              Grid& grid, ocl::Trace* trace, cpu::Scheduler scheduler,
                              const LoweredKernel* lowered) {
  return run(spec, plan_phases(spec.inputs(), params, scheduler), grid, trace, lowered);
}

RunResult HybridExecutor::estimate(const InputParams& in, const TunableParams& params,
                                   ocl::Trace* trace, cpu::Scheduler scheduler) const {
  return estimate(in, plan_phases(in, params, scheduler), trace);
}

RunResult HybridExecutor::run_serial(const WavefrontSpec& spec, Grid& grid,
                                     const LoweredKernel* lowered) const {
  spec.validate();
  if (grid.dim() != spec.dim || grid.elem_bytes() != spec.elem_bytes) {
    throw std::invalid_argument("HybridExecutor::run_serial: grid does not match spec");
  }
  cpu::TiledRegion region{spec.dim, 0, num_diagonals(spec.dim), 1};
  LoweredKernel local;
  if (!lowered) {
    local = spec.lower();
    lowered = &local;
  }
  // A full serial sweep is ONE lowered-kernel call over the whole grid.
  const WallClock::time_point wall0 = WallClock::now();
  cpu::run_serial_wavefront(region, *lowered, grid.data());
  const double wall = wall_since(wall0);
  RunResult r;
  r.params = TunableParams{1, -1, -1, 1};
  const InputParams in = spec.inputs();
  PhaseTiming t;
  t.device = PhaseDevice::kCpu;
  t.d_begin = 0;
  t.d_end = num_diagonals(spec.dim);
  t.ns = estimate_serial(in);
  t.wall_ns = wall;
  r.breakdown.phases.push_back(t);
  r.rtime_ns = r.breakdown.total_ns();
  r.wall_ns = r.breakdown.total_wall_ns();
  return r;
}

double HybridExecutor::estimate_serial(const InputParams& in) const {
  in.validate();
  cpu::TiledRegion region{in.dim, 0, num_diagonals(in.dim), 1};
  return cpu::serial_wavefront_cost_ns(region, profile_.cpu, in.tsize, in.elem_bytes());
}

RunResult HybridExecutor::execute(const InputParams& in, const PhaseProgram& program,
                                  FunctionalCtx* fctx, ocl::Trace* trace) const {
  program.validate();
  if (program.dim != in.dim) {
    throw std::invalid_argument("HybridExecutor: program dim " + std::to_string(program.dim) +
                                " does not match instance dim " + std::to_string(in.dim));
  }
  if (program.max_gpu_count() > profile_.gpu_count()) {
    throw std::invalid_argument("HybridExecutor: program requests " +
                                std::to_string(program.max_gpu_count()) + " GPU(s) but system '" +
                                profile_.name + "' has " +
                                std::to_string(profile_.gpu_count()));
  }

  RunResult result;
  result.params = program.params;
  result.breakdown.phases.reserve(program.phases.size());

  // ONE walk of the program, shared by run (fctx != nullptr) and estimate
  // (fctx == nullptr). Each phase charges its simulated time; in run mode
  // it also executes functionally — CPU phases through the selected
  // scheduler (one lowered-kernel call per tile, resolved before any
  // loop), GPU phases through the simulated devices.
  for (const PhaseDesc& ph : program.phases) {
    // Phase boundary, run mode only: the fault-injection site and the
    // cancellation/deadline polls. Estimates stay pure timing functions —
    // no site visits, no controls, so the cost model cannot be perturbed.
    // Each active member's control is polled; a member that asks to stop
    // is SHED from the batch here (its stop recorded) without aborting
    // the others — cancellation latency stays bounded by one phase.
    if (fctx) {
      fault::check(fault::Site::kPhaseBoundary);
      for (std::size_t a = 0; a < fctx->active.size();) {
        FunctionalCtx::Member& mem = fctx->members[fctx->active[a]];
        const RunControl::Stop stop =
            mem.control ? mem.control->should_stop() : RunControl::Stop::kNone;
        if (stop != RunControl::Stop::kNone) {
          mem.stop = stop;
          fctx->active.erase(fctx->active.begin() + static_cast<std::ptrdiff_t>(a));
        } else {
          ++a;
        }
      }
      if (fctx->active.empty()) break;  // every member shed: nothing left to run
    }
    PhaseTiming t;
    t.device = ph.device;
    t.d_begin = ph.d_begin;
    t.d_end = ph.d_end;
    // Measured wall time brackets the whole phase body in run mode (the
    // functional work dominates; the simulated-charge bookkeeping rides
    // along as the phase's real fixed cost). Estimates execute nothing,
    // so their wall_ns stays exactly 0 — run/estimate parity of the
    // SIMULATED fields is untouched.
    const WallClock::time_point wall0 = fctx ? WallClock::now() : WallClock::time_point{};
    if (ph.is_cpu()) {
      cpu::TiledRegion region{in.dim, ph.d_begin, ph.d_end, ph.cpu_tile};
      t.ns = cpu::wavefront_cost_ns(ph.scheduler, region, profile_.cpu, in.tsize,
                                    in.elem_bytes());
      if (fctx) {
        // All active grids through ONE scheduling structure (one barrier
        // sweep or one dep-counter graph), grids innermost. n == 1 is
        // exactly the historical single-grid path.
        fctx->storages.clear();
        for (std::size_t m : fctx->active) {
          fctx->storages.push_back(fctx->members[m].host->data());
        }
        cpu::run_wavefront(ph.scheduler, region, *fctx->pool, *fctx->lowered,
                           fctx->storages.data(), fctx->storages.size());
      }
    } else {
      gpu_phase(in, ph, fctx, trace, t);
    }
    if (fctx) {
      t.wall_ns = wall_since(wall0);
      fctx->phase_active.push_back(fctx->active.size());
    }
    result.breakdown.phases.push_back(t);
  }

  result.rtime_ns = result.breakdown.total_ns();
  result.wall_ns = result.breakdown.total_wall_ns();
  return result;
}

void HybridExecutor::gpu_phase(const InputParams& in, const PhaseDesc& ph,
                               FunctionalCtx* fctx, ocl::Trace* trace,
                               PhaseTiming& out) const {
  if (fctx) {
    // One full-grid-shaped, poison-filled buffer per device per active
    // member.
    const std::size_t bytes = in.dim * in.dim * fctx->spec->elem_bytes;
    for (std::size_t m : fctx->active) {
      FunctionalCtx::Member& mem = fctx->members[m];
      mem.dev.clear();
      for (int g = 0; g < ph.gpu_count; ++g) {
        mem.dev.emplace_back(bytes);
        mem.dev.back().fill(Grid::kPoison);
      }
    }
  }
  if (ph.gpu_count >= 2) {
    gpu_phase_multi(in, ph, fctx, trace, out);
  } else {
    gpu_phase_single(in, ph, fctx, trace, out);
  }
}

void HybridExecutor::gpu_phase_single(const InputParams& in, const PhaseDesc& ph,
                                      FunctionalCtx* fctx, ocl::Trace* trace,
                                      PhaseTiming& out) const {
  const std::size_t dim = in.dim;
  const std::size_t esize = in.elem_bytes();
  const std::size_t d0 = ph.d_begin;
  const std::size_t d1 = ph.d_end;
  const std::size_t frontier_lo = d0 >= 2 ? d0 - 2 : 0;

  ocl::Context ctx(profile_);
  if (trace) ctx.attach_trace(trace);
  ocl::Device& dev = ctx.device(0);

  // Bulk transfer in: band-region input data plus the two frontier
  // diagonals the first band diagonals depend on ("data is transferred
  // from/to CPU only twice" — paper §2.1).
  const std::size_t cells_region = cells_in_diag_range(dim, d0, d1);
  const std::size_t cells_front = cells_in_diag_range(dim, frontier_lo, d0);
  const std::size_t bytes_in = (cells_region + cells_front) * esize;
  dev.charge_write(bytes_in);
  out.transfer_in_ns = ctx.pcie_model().transfer_ns(bytes_in);
  if (fctx) {
    // ONE transfer point (one fault-site visit, one simulated charge) for
    // the whole batch; the functional copy runs per member.
    fault::check(fault::Site::kGpuTransfer);
    for (std::size_t m : fctx->active) {
      FunctionalCtx::Member& mem = fctx->members[m];
      fctx->copy_diag_rows(mem.host->data(), mem.dev[0].data(), frontier_lo, d1, 0, dim);
    }
  }

  if (ph.gpu_tile <= 1) {
    // Untiled: one kernel per diagonal (paper Fig. 2).
    for (std::size_t d = d0; d < d1; ++d) {
      const std::size_t len = diag_len(dim, d);
      if (len == 0) continue;
      ocl::LaunchShape shape;
      shape.items = len;
      shape.tsize_units = in.tsize;
      shape.bytes_per_item = esize;
      dev.charge_kernel(shape);
      ++out.kernel_launches;
      if (fctx) {
        const std::size_t lo = diag_row_lo(dim, d);
        const std::size_t hi = diag_row_hi(dim, d);
        for (std::size_t m : fctx->active) {
          std::byte* storage = fctx->members[m].dev[0].data();
          for (std::size_t i = lo; i <= hi; ++i) fctx->compute_cell(storage, i, d - i);
        }
      }
    }
  } else {
    // Tiled: one kernel per tile-diagonal; work-groups are g x g tiles
    // whose work-items run an intra-tile wavefront with barriers.
    const std::size_t g = ph.gpu_tile;
    const std::size_t Mg = (dim + g - 1) / g;
    for (std::size_t k = 0; k < 2 * Mg - 1; ++k) {
      const std::size_t span_lo = k * g;
      const std::size_t span_hi = (k + 2) * g - 2;  // inclusive
      if (span_lo >= d1 || span_hi < d0) continue;
      ocl::LaunchShape shape;
      shape.groups = std::min({k + 1, Mg, 2 * Mg - 1 - k});
      shape.serial_steps = 2 * g - 1;
      shape.syncs = 2 * g - 1;
      shape.tsize_units = in.tsize;
      shape.bytes_per_item = esize;
      shape.items = shape.groups * g * g;
      dev.charge_kernel(shape);
      ++out.kernel_launches;
      if (fctx) {
        const std::size_t i_tile_lo = diag_row_lo(Mg, k);
        const std::size_t i_tile_hi = diag_row_hi(Mg, k);
        for (std::size_t I = i_tile_lo; I <= i_tile_hi; ++I) {
          const std::size_t J = k - I;
          // One lowered-kernel call per tile per member, band clamp
          // included — the functional mirror of one simulated work-group;
          // grids iterate innermost so the batch shares the tile walk.
          for (std::size_t m : fctx->active) {
            fctx->lowered->tile(fctx->members[m].dev[0].data(), I * g,
                                std::min((I + 1) * g, dim), J * g,
                                std::min((J + 1) * g, dim), d0, d1);
          }
        }
      }
    }
  }

  // Bulk transfer out: the computed band region back to the host.
  const std::size_t bytes_out = cells_region * esize;
  dev.charge_read(bytes_out);
  out.transfer_out_ns = ctx.pcie_model().transfer_ns(bytes_out);
  if (fctx) {
    fault::check(fault::Site::kGpuTransfer);
    for (std::size_t m : fctx->active) {
      FunctionalCtx::Member& mem = fctx->members[m];
      fctx->copy_diag_rows(mem.dev[0].data(), mem.host->data(), d0, d1, 0, dim);
    }
  }

  out.ns = ctx.finish_time();
}

void HybridExecutor::gpu_phase_multi(const InputParams& in, const PhaseDesc& ph,
                                     FunctionalCtx* fctx, ocl::Trace* trace,
                                     PhaseTiming& out) const {
  const std::size_t dim = in.dim;
  const std::size_t esize = in.elem_bytes();
  const std::size_t d0 = ph.d_begin;
  const std::size_t d1 = ph.d_end;
  const std::size_t frontier_lo = d0 >= 2 ? d0 - 2 : 0;
  const auto n = static_cast<std::size_t>(ph.gpu_count);
  const long long h = ph.halo;  // redundancy depth (>= 0)

  // Fixed row split: device g owns rows [split[g], split[g+1]).
  std::vector<long long> split(n + 1);
  for (std::size_t g = 0; g <= n; ++g) {
    split[g] = static_cast<long long>(dim * g / n);
  }
  // Per-device wedge floor: the initial transfer / every swap across
  // boundary split[g] delivers rows >= wedge_lo[g].
  std::vector<long long> wedge_lo(n, 0);
  for (std::size_t g = 1; g < n; ++g) wedge_lo[g] = std::max(0LL, split[g] - h - 1);

  ocl::Context ctx(profile_);
  if (trace) ctx.attach_trace(trace);

  // Initial transfers: device g gets rows [wedge_lo[g], split[g+1]) of the
  // frontier + region (its own band plus the initial halo wedge).
  for (std::size_t g = 0; g < n; ++g) {
    std::size_t cells_in = 0;
    for (std::size_t d = frontier_lo; d < d1; ++d) {
      cells_in += diag_rows_in(dim, d, static_cast<std::size_t>(wedge_lo[g]),
                               static_cast<std::size_t>(split[g + 1]));
    }
    ctx.device(g).charge_write(cells_in * esize);
    out.transfer_in_ns += ctx.pcie_model().transfer_ns(cells_in * esize);
    if (fctx) {
      fault::check(fault::Site::kGpuTransfer);
      for (std::size_t m : fctx->active) {
        FunctionalCtx::Member& mem = fctx->members[m];
        fctx->copy_diag_rows(mem.host->data(), mem.dev[g].data(), frontier_lo, d1,
                             static_cast<std::size_t>(wedge_lo[g]),
                             static_cast<std::size_t>(split[g + 1]));
      }
    }
  }

  // Validity frontier of each device's copy on the previous two
  // diagonals: the lowest row whose value is current.
  auto frontier_v = [&](std::size_t g, long long d) -> long long {
    if (g == 0) return kValidAll;  // device 0 needs nothing from upstream
    if (d < ll(frontier_lo) || d < 0) return kValidAll;
    return wedge_lo[g] <= ll(diag_row_lo(dim, static_cast<std::size_t>(d))) ? kValidAll
                                                                            : wedge_lo[g];
  };
  std::vector<long long> v_dm1(n);
  std::vector<long long> v_dm2(n);
  for (std::size_t g = 0; g < n; ++g) {
    v_dm1[g] = frontier_v(g, ll(d0) - 1);
    v_dm2[g] = frontier_v(g, ll(d0) - 2);
  }

  for (std::size_t d = d0; d < d1; ++d) {
    const long long i_lo = ll(diag_row_lo(dim, d));
    const long long i_hi = ll(diag_row_hi(dim, d));

    // Plan each device's row range; fire the chained halo swaps first so
    // their transfers precede this diagonal's kernels on the timelines.
    std::vector<bool> active(n, false);
    std::vector<long long> compute_lo(n, 0);
    std::vector<long long> compute_hi(n, -1);
    for (std::size_t g = 0; g < n; ++g) {
      const long long own_lo = std::max(split[g], i_lo);
      const long long own_hi = std::min(split[g + 1] - 1, i_hi);
      compute_hi[g] = own_hi;
      if (own_lo > own_hi) continue;  // no owned cells on this diagonal
      active[g] = true;
      long long can_lo = std::max({std::max(v_dm1[g], v_dm2[g]) + 1, i_lo});
      if (can_lo > own_lo) {
        // Halo swap: device g-1 -> host -> device g, strips
        // [wedge_lo[g], split[g]) of the two previous diagonals
        // (paper Fig. 3, chained across every internal boundary).
        std::size_t strip_cells = 0;
        for (long long pd = ll(d) - 2; pd <= ll(d) - 1; ++pd) {
          if (pd < 0) continue;
          strip_cells += diag_rows_in(dim, static_cast<std::size_t>(pd),
                                      static_cast<std::size_t>(wedge_lo[g]),
                                      static_cast<std::size_t>(split[g]));
        }
        const std::size_t bytes = strip_cells * esize;
        ctx.device(g - 1).charge_copy_to(ctx.device(g), bytes);
        out.swap_ns += 2.0 * ctx.pcie_model().transfer_ns(bytes);
        ++out.swap_count;
        if (fctx) {
          for (long long pd = ll(d) - 2; pd <= ll(d) - 1; ++pd) {
            if (pd < 0) continue;
            for (std::size_t m : fctx->active) {
              FunctionalCtx::Member& mem = fctx->members[m];
              fctx->copy_diag_rows(mem.dev[g - 1].data(), mem.dev[g].data(),
                                   static_cast<std::size_t>(pd),
                                   static_cast<std::size_t>(pd) + 1,
                                   static_cast<std::size_t>(wedge_lo[g]),
                                   static_cast<std::size_t>(split[g]));
            }
          }
        }
        v_dm1[g] = std::min(v_dm1[g], wedge_lo[g]);
        v_dm2[g] = std::min(v_dm2[g], wedge_lo[g]);
        can_lo = std::max({std::max(v_dm1[g], v_dm2[g]) + 1, i_lo});
      }
      compute_lo[g] = can_lo;
      out.redundant_cells += static_cast<std::size_t>(std::max(0LL, own_lo - can_lo));
    }

    // Launch this diagonal's kernels (devices run concurrently).
    for (std::size_t g = 0; g < n; ++g) {
      if (!active[g]) {
        v_dm2[g] = v_dm1[g];
        v_dm1[g] = kValidNone;  // computed nothing: its copy of d is stale
        continue;
      }
      ocl::LaunchShape shape;
      shape.items = static_cast<std::size_t>(compute_hi[g] - compute_lo[g] + 1);
      shape.tsize_units = in.tsize;
      shape.bytes_per_item = esize;
      ctx.device(g).charge_kernel(shape);
      ++out.kernel_launches;
      if (fctx) {
        for (std::size_t m : fctx->active) {
          std::byte* storage = fctx->members[m].dev[g].data();
          for (long long i = compute_lo[g]; i <= compute_hi[g]; ++i) {
            fctx->compute_cell(storage, static_cast<std::size_t>(i),
                               d - static_cast<std::size_t>(i));
          }
        }
      }
      v_dm2[g] = v_dm1[g];
      v_dm1[g] = compute_lo[g] <= i_lo ? kValidAll : compute_lo[g];
    }
  }

  // Bulk transfers out: each device returns its owned region cells.
  for (std::size_t g = 0; g < n; ++g) {
    std::size_t cells_out = 0;
    for (std::size_t d = d0; d < d1; ++d) {
      cells_out += diag_rows_in(dim, d, static_cast<std::size_t>(split[g]),
                                static_cast<std::size_t>(split[g + 1]));
    }
    ctx.device(g).charge_read(cells_out * esize);
    out.transfer_out_ns += ctx.pcie_model().transfer_ns(cells_out * esize);
    if (fctx) {
      fault::check(fault::Site::kGpuTransfer);
      for (std::size_t m : fctx->active) {
        FunctionalCtx::Member& mem = fctx->members[m];
        fctx->copy_diag_rows(mem.dev[g].data(), mem.host->data(), d0, d1,
                             static_cast<std::size_t>(split[g]),
                             static_cast<std::size_t>(split[g + 1]));
      }
    }
  }

  out.ns = ctx.finish_time();
}

}  // namespace wavetune::core
