#include "core/executor.hpp"

#include <algorithm>
#include <chrono>
#include <climits>
#include <cstring>
#include <stdexcept>
#include <string>

#include "cpu/tiled_wavefront.hpp"
#include "fault/injector.hpp"
#include "ocl/context.hpp"

namespace wavetune::core {

namespace {

/// Sentinels for the multi-GPU validity frontier (see gpu_phase_multi).
constexpr long long kValidAll = LLONG_MIN / 4;   ///< every existing row valid
constexpr long long kValidNone = LLONG_MAX / 4;  ///< no row valid

long long ll(std::size_t v) { return static_cast<long long>(v); }

using WallClock = std::chrono::steady_clock;

double wall_since(WallClock::time_point t0) {
  return std::chrono::duration<double, std::nano>(WallClock::now() - t0).count();
}

}  // namespace

// --- PhaseBreakdown derived accessors ------------------------------------

double PhaseBreakdown::total_ns() const {
  double t = 0.0;
  for (const PhaseTiming& p : phases) t += p.ns;
  return t;
}

double PhaseBreakdown::total_wall_ns() const {
  double t = 0.0;
  for (const PhaseTiming& p : phases) t += p.wall_ns;
  return t;
}

double PhaseBreakdown::phase1_ns() const {
  double t = 0.0;
  for (const PhaseTiming& p : phases) {
    if (p.device != PhaseDevice::kCpu) break;  // first GPU phase ends "phase 1"
    t += p.ns;
  }
  return t;
}

double PhaseBreakdown::gpu_ns() const {
  double t = 0.0;
  for (const PhaseTiming& p : phases) {
    if (p.device != PhaseDevice::kCpu) t += p.ns;
  }
  return t;
}

double PhaseBreakdown::phase3_ns() const { return total_ns() - phase1_ns() - gpu_ns(); }

double PhaseBreakdown::transfer_in_ns() const {
  double t = 0.0;
  for (const PhaseTiming& p : phases) t += p.transfer_in_ns;
  return t;
}

double PhaseBreakdown::transfer_out_ns() const {
  double t = 0.0;
  for (const PhaseTiming& p : phases) t += p.transfer_out_ns;
  return t;
}

double PhaseBreakdown::swap_ns() const {
  double t = 0.0;
  for (const PhaseTiming& p : phases) t += p.swap_ns;
  return t;
}

std::size_t PhaseBreakdown::kernel_launches() const {
  std::size_t n = 0;
  for (const PhaseTiming& p : phases) n += p.kernel_launches;
  return n;
}

std::size_t PhaseBreakdown::swap_count() const {
  std::size_t n = 0;
  for (const PhaseTiming& p : phases) n += p.swap_count;
  return n;
}

std::size_t PhaseBreakdown::redundant_cells() const {
  std::size_t n = 0;
  for (const PhaseTiming& p : phases) n += p.redundant_cells;
  return n;
}

// --- executor -------------------------------------------------------------

/// Run-mode state: the spec plus one MEMBER per batched grid (a lone
/// run() is a batch of one). Each member owns its host grid, its control,
/// and one full-grid-shaped device buffer per GPU; device buffers are
/// poison-filled so that any read of a cell the schedule never
/// transferred or computed produces loudly-wrong values instead of
/// accidentally-correct zeros. `active` lists the members still running —
/// members shed by their control at a phase boundary leave the list
/// without aborting the rest of the batch.
struct HybridExecutor::FunctionalCtx {
  const WavefrontSpec* spec = nullptr;
  cpu::ThreadPool* pool = nullptr;
  /// Plan-time kernel resolution (core/lowered.hpp), resolved exactly
  /// once per run — by the caller's compiled plan or at the top of
  /// run(). Every functional compute is a plain indirect call through it.
  const LoweredKernel* lowered = nullptr;

  struct Member {
    Grid* host = nullptr;
    /// Cancellation/deadline poll (core/run_control.hpp); null on the
    /// control-free fast path.
    const RunControl* control = nullptr;
    std::vector<ocl::Buffer> dev;
    RunControl::Stop stop = RunControl::Stop::kNone;
  };
  std::vector<Member> members;
  std::vector<std::size_t> active;  ///< indices of members still running
  /// Active member count per EXECUTED phase, recorded by execute() in run
  /// mode — the denominator for fused wall-time attribution.
  std::vector<std::size_t> phase_active;
  /// Scratch for CPU phases: the active members' storages, rebuilt per
  /// phase (members can be shed between phases).
  std::vector<std::byte*> storages;

  // Streaming checkpoint/resume plumbing (single-member runs only).
  const StreamControl* stream = nullptr;
  std::string program_digest;     ///< PhaseProgram::describe(), for checkpoints
  std::size_t resume_phase = 0;   ///< phases before this are charge-only
  std::size_t resume_strip = 0;   ///< strips of resume_phase before this too
  bool resuming = false;

  std::size_t real_elem() const { return spec->elem_bytes; }
  std::size_t real_offset(std::size_t i, std::size_t j) const {
    return (i * spec->dim + j) * spec->elem_bytes;
  }
  /// Byte offset of cell (i, j) inside a strip-local buffer whose first
  /// resident grid row is `base_row`.
  std::size_t local_offset(std::size_t base_row, std::size_t i, std::size_t j) const {
    return ((i - base_row) * spec->dim + j) * spec->elem_bytes;
  }

  /// Computes cell (i, j): a one-cell block (diagonal sweeps have no
  /// row-contiguous runs to batch).
  void compute_cell(std::byte* storage, std::size_t i, std::size_t j) const {
    lowered->block(storage, i, i + 1, j, j + 1);
  }
  /// Strip-local variant against a row-window buffer.
  void compute_cell_local(std::byte* base, std::size_t base_row, std::size_t i,
                          std::size_t j) const {
    lowered->block_local(base, base_row, i, i + 1, j, j + 1);
  }

  /// Copies the cells of diagonals [d_begin, d_end) with rows in
  /// [row_begin, row_end) from `src` to `dst` (both full-grid-shaped).
  /// Each row's intersection with the diagonal band is one contiguous
  /// column span, so this is one memcpy per row, not one per cell.
  void copy_diag_rows(const std::byte* src, std::byte* dst, std::size_t d_begin,
                      std::size_t d_end, std::size_t row_begin, std::size_t row_end) const {
    const std::size_t dim = spec->dim;
    const std::size_t i_end = std::min(row_end, dim);
    for (std::size_t i = row_begin; i < i_end; ++i) {
      if (d_end <= i) break;  // spans only shrink as i grows
      const auto [j_lo, j_hi] = cpu::row_band_span(i, d_begin, d_end, 0, dim);
      if (j_lo >= j_hi) continue;
      const std::size_t off = real_offset(i, j_lo);
      std::memcpy(dst + off, src + off, (j_hi - j_lo) * real_elem());
    }
  }

  /// Strip-local counterparts of copy_diag_rows: one side is a row-window
  /// buffer addressed through (base, base_row). Row [row_begin, row_end)
  /// must lie inside the buffer's resident rows.
  void copy_full_to_local(const std::byte* src, std::byte* dst_base, std::size_t base_row,
                          std::size_t d_begin, std::size_t d_end, std::size_t row_begin,
                          std::size_t row_end) const {
    const std::size_t dim = spec->dim;
    const std::size_t i_end = std::min(row_end, dim);
    for (std::size_t i = row_begin; i < i_end; ++i) {
      if (d_end <= i) break;
      const auto [j_lo, j_hi] = cpu::row_band_span(i, d_begin, d_end, 0, dim);
      if (j_lo >= j_hi) continue;
      std::memcpy(dst_base + local_offset(base_row, i, j_lo), src + real_offset(i, j_lo),
                  (j_hi - j_lo) * real_elem());
    }
  }
  void copy_local_to_full(const std::byte* src_base, std::size_t base_row, std::byte* dst,
                          std::size_t d_begin, std::size_t d_end, std::size_t row_begin,
                          std::size_t row_end) const {
    const std::size_t dim = spec->dim;
    const std::size_t i_end = std::min(row_end, dim);
    for (std::size_t i = row_begin; i < i_end; ++i) {
      if (d_end <= i) break;
      const auto [j_lo, j_hi] = cpu::row_band_span(i, d_begin, d_end, 0, dim);
      if (j_lo >= j_hi) continue;
      std::memcpy(dst + real_offset(i, j_lo), src_base + local_offset(base_row, i, j_lo),
                  (j_hi - j_lo) * real_elem());
    }
  }
  /// Halo-row move between two strip-local buffers (or within one, for
  /// the 1-buffer pool — distinct rows, but memmove keeps it safe).
  void copy_local_row(const std::byte* src_base, std::size_t src_base_row,
                      std::byte* dst_base, std::size_t dst_base_row, std::size_t row,
                      std::size_t j_lo, std::size_t j_hi) const {
    if (j_lo >= j_hi) return;
    std::memmove(dst_base + local_offset(dst_base_row, row, j_lo),
                 src_base + local_offset(src_base_row, row, j_lo),
                 (j_hi - j_lo) * real_elem());
  }

  /// Emits a strip-boundary checkpoint when the stream asks for one.
  /// Only single-member runs checkpoint (a fused batch has no single
  /// grid to snapshot); `next_strip` is the resume cursor, i.e. strips
  /// BELOW it are complete in the host grid.
  void maybe_checkpoint(std::size_t phase_index, std::size_t next_strip) const {
    if (!stream || !stream->on_checkpoint || members.size() != 1) return;
    const std::size_t every = std::max<std::size_t>(1, stream->checkpoint_every_strips);
    if (next_strip % every != 0) return;
    RunCheckpoint cp;
    cp.program_digest = program_digest;
    cp.dim = spec->dim;
    cp.elem_bytes = spec->elem_bytes;
    cp.phase_index = phase_index;
    cp.strip_index = next_strip;
    const Grid& g = *members[0].host;
    cp.grid.assign(g.data(), g.data() + spec->dim * spec->dim * spec->elem_bytes);
    stream->on_checkpoint(cp);
  }
};

HybridExecutor::HybridExecutor(sim::SystemProfile profile, std::size_t pool_workers)
    : profile_(std::move(profile)), pool_(pool_workers) {}

RunResult HybridExecutor::run(const WavefrontSpec& spec, const PhaseProgram& program,
                              Grid& grid, ocl::Trace* trace, const LoweredKernel* lowered,
                              const RunControl* control, const StreamControl* stream) {
  spec.validate();
  if (grid.dim() != spec.dim || grid.elem_bytes() != spec.elem_bytes) {
    throw std::invalid_argument("HybridExecutor::run: grid does not match spec");
  }
  // Kernel lowering happens HERE (or earlier, in the caller's compiled
  // plan) — once per run, never per tile/diagonal/phase.
  LoweredKernel local;
  if (!lowered) {
    local = spec.lower();
    lowered = &local;
  }
  FunctionalCtx fctx;
  fctx.spec = &spec;
  fctx.pool = &pool_;
  fctx.lowered = lowered;
  fctx.members.emplace_back();
  fctx.members[0].host = &grid;
  fctx.members[0].control = control;
  fctx.active.push_back(0);
  if (stream && (stream->resume || stream->on_checkpoint)) {
    fctx.stream = stream;
    fctx.program_digest = program.describe();
    if (stream->resume) {
      // Restore the snapshot and set the charge-only cursor: everything
      // before (resume_phase, resume_strip) is already in the grid.
      stream->resume->validate_against(fctx.program_digest, spec.dim, spec.elem_bytes);
      std::memcpy(grid.data(), stream->resume->grid.data(), stream->resume->grid.size());
      fctx.resuming = true;
      fctx.resume_phase = stream->resume->phase_index;
      fctx.resume_strip = stream->resume->strip_index;
    }
  }
  RunResult result = execute(spec.inputs(), program, &fctx, trace);
  // A lone run preserves the historical contract: a control stop is an
  // ExecutionInterrupted throw, not a shed.
  if (fctx.members[0].stop != RunControl::Stop::kNone) {
    throw ExecutionInterrupted(fctx.members[0].stop);
  }
  return result;
}

std::vector<BatchOutcome> HybridExecutor::run_batch(const WavefrontSpec& spec,
                                                    const PhaseProgram& program,
                                                    const std::vector<BatchMember>& members,
                                                    ocl::Trace* trace,
                                                    const LoweredKernel* lowered) {
  spec.validate();
  if (members.empty()) return {};
  for (const BatchMember& m : members) {
    if (!m.grid || m.grid->dim() != spec.dim || m.grid->elem_bytes() != spec.elem_bytes) {
      throw std::invalid_argument("HybridExecutor::run_batch: grid does not match spec");
    }
  }
  LoweredKernel local;
  if (!lowered) {
    local = spec.lower();
    lowered = &local;
  }
  FunctionalCtx fctx;
  fctx.spec = &spec;
  fctx.pool = &pool_;
  fctx.lowered = lowered;
  fctx.members.resize(members.size());
  fctx.active.reserve(members.size());
  for (std::size_t m = 0; m < members.size(); ++m) {
    fctx.members[m].host = members[m].grid;
    fctx.members[m].control = members[m].control;
    fctx.active.push_back(m);
  }
  // ONE interpretation of the program for the whole batch. The simulated
  // fields of `shared` are a pure function of (inputs, program) — exactly
  // what a lone run() of any member would report.
  const RunResult shared = execute(spec.inputs(), program, &fctx, trace);

  std::vector<BatchOutcome> out(members.size());
  for (std::size_t m = 0; m < members.size(); ++m) {
    out[m].stop = fctx.members[m].stop;
    if (out[m].stop != RunControl::Stop::kNone) continue;  // shed: no result
    RunResult r = shared;
    // Attribute the fused measured wall time: each phase's wall is split
    // evenly across the members that were active in it.
    for (std::size_t p = 0; p < r.breakdown.phases.size(); ++p) {
      r.breakdown.phases[p].wall_ns /= static_cast<double>(fctx.phase_active[p]);
    }
    r.wall_ns = r.breakdown.total_wall_ns();
    out[m].result = std::move(r);
  }
  return out;
}

RunResult HybridExecutor::estimate(const InputParams& in, const PhaseProgram& program,
                                   ocl::Trace* trace) const {
  in.validate();
  return execute(in, program, nullptr, trace);
}

RunResult HybridExecutor::run(const WavefrontSpec& spec, const TunableParams& params,
                              Grid& grid, ocl::Trace* trace, cpu::Scheduler scheduler,
                              const LoweredKernel* lowered) {
  return run(spec, plan_phases(spec.inputs(), params, scheduler), grid, trace, lowered);
}

RunResult HybridExecutor::estimate(const InputParams& in, const TunableParams& params,
                                   ocl::Trace* trace, cpu::Scheduler scheduler) const {
  return estimate(in, plan_phases(in, params, scheduler), trace);
}

RunResult HybridExecutor::run_serial(const WavefrontSpec& spec, Grid& grid,
                                     const LoweredKernel* lowered) const {
  spec.validate();
  if (grid.dim() != spec.dim || grid.elem_bytes() != spec.elem_bytes) {
    throw std::invalid_argument("HybridExecutor::run_serial: grid does not match spec");
  }
  cpu::TiledRegion region{spec.dim, 0, num_diagonals(spec.dim), 1};
  LoweredKernel local;
  if (!lowered) {
    local = spec.lower();
    lowered = &local;
  }
  // A full serial sweep is ONE lowered-kernel call over the whole grid.
  const WallClock::time_point wall0 = WallClock::now();
  cpu::run_serial_wavefront(region, *lowered, grid.data());
  const double wall = wall_since(wall0);
  RunResult r;
  r.params = TunableParams{1, -1, -1, 1};
  const InputParams in = spec.inputs();
  PhaseTiming t;
  t.device = PhaseDevice::kCpu;
  t.d_begin = 0;
  t.d_end = num_diagonals(spec.dim);
  t.ns = estimate_serial(in);
  t.wall_ns = wall;
  r.breakdown.phases.push_back(t);
  r.rtime_ns = r.breakdown.total_ns();
  r.wall_ns = r.breakdown.total_wall_ns();
  return r;
}

double HybridExecutor::estimate_serial(const InputParams& in) const {
  in.validate();
  cpu::TiledRegion region{in.dim, 0, num_diagonals(in.dim), 1};
  return cpu::serial_wavefront_cost_ns(region, profile_.cpu, in.tsize, in.elem_bytes());
}

RunResult HybridExecutor::execute(const InputParams& in, const PhaseProgram& program,
                                  FunctionalCtx* fctx, ocl::Trace* trace) const {
  program.validate();
  if (program.dim != in.dim) {
    throw std::invalid_argument("HybridExecutor: program dim " + std::to_string(program.dim) +
                                " does not match instance dim " + std::to_string(in.dim));
  }
  if (program.max_gpu_count() > profile_.gpu_count()) {
    throw std::invalid_argument("HybridExecutor: program requests " +
                                std::to_string(program.max_gpu_count()) + " GPU(s) but system '" +
                                profile_.name + "' has " +
                                std::to_string(profile_.gpu_count()));
  }

  RunResult result;
  result.params = program.params;
  result.breakdown.phases.reserve(program.phases.size());

  // ONE walk of the program, shared by run (fctx != nullptr) and estimate
  // (fctx == nullptr). Each phase charges its simulated time; in run mode
  // it also executes functionally — CPU phases through the selected
  // scheduler (one lowered-kernel call per tile, resolved before any
  // loop), GPU phases through the simulated devices.
  for (std::size_t p = 0; p < program.phases.size(); ++p) {
    const PhaseDesc& ph = program.phases[p];
    // Phase boundary, run mode only: the fault-injection site and the
    // cancellation/deadline polls. Estimates stay pure timing functions —
    // no site visits, no controls, so the cost model cannot be perturbed.
    // Each active member's control is polled; a member that asks to stop
    // is SHED from the batch here (its stop recorded) without aborting
    // the others — cancellation latency stays bounded by one phase.
    if (fctx) {
      fault::check(fault::Site::kPhaseBoundary);
      for (std::size_t a = 0; a < fctx->active.size();) {
        FunctionalCtx::Member& mem = fctx->members[fctx->active[a]];
        const RunControl::Stop stop =
            mem.control ? mem.control->should_stop() : RunControl::Stop::kNone;
        if (stop != RunControl::Stop::kNone) {
          mem.stop = stop;
          fctx->active.erase(fctx->active.begin() + static_cast<std::ptrdiff_t>(a));
        } else {
          ++a;
        }
      }
      if (fctx->active.empty()) break;  // every member shed: nothing left to run
    }
    // Resume cursor: phases before it (and strips of the cursor phase
    // before its strip index) are charge-only — the grid already holds
    // their results. The simulated schedule is walked IN FULL either way,
    // keeping the RunResult a pure function of (inputs, program).
    const bool phase_skipped = fctx && fctx->resuming && p < fctx->resume_phase;
    const std::size_t resume_strip =
        (fctx && fctx->resuming && p == fctx->resume_phase) ? fctx->resume_strip : 0;
    FunctionalCtx* f = phase_skipped ? nullptr : fctx;
    PhaseTiming t;
    t.device = ph.device;
    t.d_begin = ph.d_begin;
    t.d_end = ph.d_end;
    // Measured wall time brackets the whole phase body in run mode (the
    // functional work dominates; the simulated-charge bookkeeping rides
    // along as the phase's real fixed cost). Estimates execute nothing,
    // so their wall_ns stays exactly 0 — run/estimate parity of the
    // SIMULATED fields is untouched.
    const WallClock::time_point wall0 = fctx ? WallClock::now() : WallClock::time_point{};
    if (ph.is_cpu()) {
      if (!ph.streamed()) {
        cpu::TiledRegion region{in.dim, ph.d_begin, ph.d_end, ph.cpu_tile};
        t.ns = cpu::wavefront_cost_ns(ph.scheduler, region, profile_.cpu, in.tsize,
                                      in.elem_bytes());
        if (f) {
          // All active grids through ONE scheduling structure (one barrier
          // sweep or one dep-counter graph), grids innermost. n == 1 is
          // exactly the historical single-grid path.
          f->storages.clear();
          for (std::size_t m : f->active) {
            f->storages.push_back(f->members[m].host->data());
          }
          cpu::run_wavefront(ph.scheduler, region, *f->pool, *f->lowered,
                             f->storages.data(), f->storages.size());
        }
      } else {
        // Streamed CPU phase: the strips run back to back on the host
        // grids (dependency-safe: a strip's last row is the next strip's
        // north frontier, already final when the next strip starts). No
        // overlap to buy on the host — the win is the checkpoint points
        // and the uniform strip axis — so serialized_ns == ns.
        const std::size_t strips = ph.strip_count(in.dim);
        for (std::size_t s = 0; s < strips; ++s) {
          const std::size_t r0 = s * ph.strip_rows;
          const std::size_t r1 = std::min(in.dim, r0 + ph.strip_rows);
          cpu::TiledRegion region{in.dim, ph.d_begin, ph.d_end, ph.cpu_tile, r0, r1};
          if (region.cell_count() == 0) continue;
          ++t.strips;
          t.ns += cpu::wavefront_cost_ns(ph.scheduler, region, profile_.cpu, in.tsize,
                                         in.elem_bytes());
          if (f && s >= resume_strip) {
            f->storages.clear();
            for (std::size_t m : f->active) {
              f->storages.push_back(f->members[m].host->data());
            }
            cpu::run_wavefront(ph.scheduler, region, *f->pool, *f->lowered,
                               f->storages.data(), f->storages.size());
            f->maybe_checkpoint(p, s + 1);
          }
        }
        t.serialized_ns = t.ns;
      }
    } else {
      gpu_phase(in, ph, f, resume_strip, p, trace, t);
    }
    if (fctx) {
      t.wall_ns = wall_since(wall0);
      fctx->phase_active.push_back(fctx->active.size());
    }
    result.breakdown.phases.push_back(t);
  }

  result.rtime_ns = result.breakdown.total_ns();
  result.wall_ns = result.breakdown.total_wall_ns();
  return result;
}

void HybridExecutor::gpu_phase(const InputParams& in, const PhaseDesc& ph,
                               FunctionalCtx* fctx, std::size_t resume_strip,
                               std::size_t phase_index, ocl::Trace* trace,
                               PhaseTiming& out) const {
  if (fctx) {
    // Device storage per active member: one full-grid-shaped buffer per
    // device, or — for a streamed phase — the fixed strip pool of
    // strip_buffers buffers of (strip_rows + 1) rows each, which is the
    // whole point: peak residency O(strip_rows * dim), not O(dim^2).
    // Either way the buffers are poison-filled so reads of cells the
    // schedule never staged produce loudly-wrong values.
    const std::size_t bytes =
        ph.streamed() ? (ph.strip_rows + 1) * in.dim * fctx->spec->elem_bytes
                      : in.dim * in.dim * fctx->spec->elem_bytes;
    const std::size_t count =
        ph.streamed() ? ph.strip_buffers : static_cast<std::size_t>(ph.gpu_count);
    for (std::size_t m : fctx->active) {
      FunctionalCtx::Member& mem = fctx->members[m];
      mem.dev.clear();
      for (std::size_t g = 0; g < count; ++g) {
        mem.dev.emplace_back(bytes);
        mem.dev.back().fill(Grid::kPoison);
      }
    }
  }
  if (ph.gpu_count >= 2) {
    gpu_phase_multi(in, ph, fctx, trace, out);
  } else if (ph.streamed()) {
    gpu_phase_single_streamed(in, ph, fctx, resume_strip, phase_index, trace, out);
  } else {
    gpu_phase_single(in, ph, fctx, trace, out);
  }
}

void HybridExecutor::gpu_phase_single(const InputParams& in, const PhaseDesc& ph,
                                      FunctionalCtx* fctx, ocl::Trace* trace,
                                      PhaseTiming& out) const {
  const std::size_t dim = in.dim;
  const std::size_t esize = in.elem_bytes();
  const std::size_t d0 = ph.d_begin;
  const std::size_t d1 = ph.d_end;
  const std::size_t frontier_lo = d0 >= 2 ? d0 - 2 : 0;

  ocl::Context ctx(profile_);
  if (trace) ctx.attach_trace(trace);
  ocl::Device& dev = ctx.device(0);

  // Bulk transfer in: band-region input data plus the two frontier
  // diagonals the first band diagonals depend on ("data is transferred
  // from/to CPU only twice" — paper §2.1).
  const std::size_t cells_region = cells_in_diag_range(dim, d0, d1);
  const std::size_t cells_front = cells_in_diag_range(dim, frontier_lo, d0);
  const std::size_t bytes_in = (cells_region + cells_front) * esize;
  dev.charge_write(bytes_in);
  out.transfer_in_ns = ctx.pcie_model().transfer_ns(bytes_in);
  if (fctx) {
    // ONE transfer point (one fault-site visit, one simulated charge) for
    // the whole batch; the functional copy runs per member.
    fault::check(fault::Site::kGpuTransfer);
    for (std::size_t m : fctx->active) {
      FunctionalCtx::Member& mem = fctx->members[m];
      fctx->copy_diag_rows(mem.host->data(), mem.dev[0].data(), frontier_lo, d1, 0, dim);
    }
  }

  if (ph.gpu_tile <= 1) {
    // Untiled: one kernel per diagonal (paper Fig. 2).
    for (std::size_t d = d0; d < d1; ++d) {
      const std::size_t len = diag_len(dim, d);
      if (len == 0) continue;
      ocl::LaunchShape shape;
      shape.items = len;
      shape.tsize_units = in.tsize;
      shape.bytes_per_item = esize;
      dev.charge_kernel(shape);
      ++out.kernel_launches;
      if (fctx) {
        const std::size_t lo = diag_row_lo(dim, d);
        const std::size_t hi = diag_row_hi(dim, d);
        for (std::size_t m : fctx->active) {
          std::byte* storage = fctx->members[m].dev[0].data();
          for (std::size_t i = lo; i <= hi; ++i) fctx->compute_cell(storage, i, d - i);
        }
      }
    }
  } else {
    // Tiled: one kernel per tile-diagonal; work-groups are g x g tiles
    // whose work-items run an intra-tile wavefront with barriers.
    const std::size_t g = ph.gpu_tile;
    const std::size_t Mg = (dim + g - 1) / g;
    for (std::size_t k = 0; k < 2 * Mg - 1; ++k) {
      const std::size_t span_lo = k * g;
      const std::size_t span_hi = (k + 2) * g - 2;  // inclusive
      if (span_lo >= d1 || span_hi < d0) continue;
      ocl::LaunchShape shape;
      shape.groups = std::min({k + 1, Mg, 2 * Mg - 1 - k});
      shape.serial_steps = 2 * g - 1;
      shape.syncs = 2 * g - 1;
      shape.tsize_units = in.tsize;
      shape.bytes_per_item = esize;
      shape.items = shape.groups * g * g;
      dev.charge_kernel(shape);
      ++out.kernel_launches;
      if (fctx) {
        const std::size_t i_tile_lo = diag_row_lo(Mg, k);
        const std::size_t i_tile_hi = diag_row_hi(Mg, k);
        for (std::size_t I = i_tile_lo; I <= i_tile_hi; ++I) {
          const std::size_t J = k - I;
          // One lowered-kernel call per tile per member, band clamp
          // included — the functional mirror of one simulated work-group;
          // grids iterate innermost so the batch shares the tile walk.
          for (std::size_t m : fctx->active) {
            fctx->lowered->tile(fctx->members[m].dev[0].data(), I * g,
                                std::min((I + 1) * g, dim), J * g,
                                std::min((J + 1) * g, dim), d0, d1);
          }
        }
      }
    }
  }

  // Bulk transfer out: the computed band region back to the host.
  const std::size_t bytes_out = cells_region * esize;
  dev.charge_read(bytes_out);
  out.transfer_out_ns = ctx.pcie_model().transfer_ns(bytes_out);
  if (fctx) {
    fault::check(fault::Site::kGpuTransfer);
    for (std::size_t m : fctx->active) {
      FunctionalCtx::Member& mem = fctx->members[m];
      fctx->copy_diag_rows(mem.dev[0].data(), mem.host->data(), d0, d1, 0, dim);
    }
  }

  out.ns = ctx.finish_time();
}

void HybridExecutor::gpu_phase_single_streamed(const InputParams& in, const PhaseDesc& ph,
                                               FunctionalCtx* fctx,
                                               std::size_t resume_strip,
                                               std::size_t phase_index, ocl::Trace* trace,
                                               PhaseTiming& out) const {
  const std::size_t dim = in.dim;
  const std::size_t esize = in.elem_bytes();
  const std::size_t d0 = ph.d_begin;
  const std::size_t d1 = ph.d_end;
  const std::size_t frontier_lo = d0 >= 2 ? d0 - 2 : 0;
  const std::size_t strips = ph.strip_count(dim);

  // Per-strip geometry, computed once and walked twice (real pool, then
  // the 1-buffer serialized baseline).
  struct StripInfo {
    std::size_t r0 = 0, r1 = 0;  ///< row window [r0, r1)
    std::size_t up_cells = 0;    ///< frontier + band cells staged in
    std::size_t down_cells = 0;  ///< band cells read back
    std::size_t halo_j_lo = 0;   ///< row r0-1's [frontier_lo, d1) span
    std::size_t halo_j_hi = 0;
  };
  std::vector<StripInfo> info(strips);
  std::size_t s_first = strips;
  std::size_t s_last = 0;
  for (std::size_t s = 0; s < strips; ++s) {
    StripInfo& si = info[s];
    si.r0 = s * ph.strip_rows;
    si.r1 = std::min(dim, si.r0 + ph.strip_rows);
    for (std::size_t i = si.r0; i < si.r1; ++i) {
      if (d1 <= i) break;
      const auto [ulo, uhi] = cpu::row_band_span(i, frontier_lo, d1, 0, dim);
      if (ulo < uhi) si.up_cells += uhi - ulo;
      const auto [blo, bhi] = cpu::row_band_span(i, d0, d1, 0, dim);
      if (blo < bhi) si.down_cells += bhi - blo;
    }
    if (si.r0 > 0 && si.r0 <= d1) {
      const auto [hlo, hhi] = cpu::row_band_span(si.r0 - 1, frontier_lo, d1, 0, dim);
      si.halo_j_lo = hlo;
      si.halo_j_hi = hhi;
    }
    if (si.down_cells > 0) {
      s_first = std::min(s_first, s);
      s_last = std::max(s_last, s);
    }
  }
  if (s_first == strips) return;  // no band cells anywhere (cannot happen
                                  // for a validated non-empty range)
  out.strips = s_last - s_first + 1;

  // ONE parameterized walk of the strip schedule — the same routine
  // charges the real pool (with functional execution and tracing) and
  // the B == 1 serialized baseline (timing only, fresh timelines), so
  // serialized_ns is the same schedule minus the overlap by
  // construction. Per executed strip s (buffer b = (s - s_first) % B):
  //   H_s  halo row r0-1 copied into b's row 0 on the COMPUTE queue
  //        (in-order after strip s-1's kernels); first strip folds the
  //        halo into its upload instead (the row is host data).
  //   W_s  async upload of host rows [r0, r1) x [frontier_lo, d1) on the
  //        PCIe link only, gated on b's previous occupant draining
  //        (readback done, halo row re-read done) — the DMA engine: with
  //        B >= 2 this runs while strip s-1's kernels execute.
  //   K_s  the phase's kernels clipped to the strip's rows; the first
  //        launch waits on W_s, the rest ride the in-order queue.
  //   R_s  async readback of the band cells, after K_s.
  // Enqueue order per iteration: H_s, then W_{s+1} (prefetch; W_s itself
  // for B == 1 — its deps make prefetching meaningless), K_s, R_s.
  auto walk = [&](std::size_t B, ocl::Context& ctx, FunctionalCtx* f,
                  PhaseTiming* acc) -> double {
    ocl::Device& dev = ctx.device(0);
    std::vector<ocl::Event> ev_w(strips), ev_h(strips), ev_k(strips), ev_r(strips);
    std::vector<ocl::Event> deps;

    auto base_row_of = [&](std::size_t s) { return info[s].r0 == 0 ? 0 : info[s].r0 - 1; };
    auto buf_of = [&](std::size_t s) { return (s - s_first) % B; };
    // Buffer-reuse gates for strip s's writes into buffer b: the previous
    // occupant's readback, plus the halo re-read of that occupant's last
    // row by the strip after it.
    auto slot_deps = [&](std::size_t s, bool include_self_halo) {
      deps.clear();
      if (s >= s_first + B) {
        deps.push_back(ev_r[s - B]);
        const std::size_t hs = s - B + 1;
        if ((hs != s || include_self_halo) && hs > s_first && hs <= s_last &&
            info[hs].halo_j_lo < info[hs].halo_j_hi) {
          deps.push_back(ev_h[hs]);
        }
      }
    };

    auto enqueue_w = [&](std::size_t s) {
      const StripInfo& si = info[s];
      const bool fold_halo = s == s_first && si.halo_j_lo < si.halo_j_hi;
      const std::size_t cells =
          si.up_cells + (fold_halo ? si.halo_j_hi - si.halo_j_lo : 0);
      const std::size_t bytes = cells * esize;
      slot_deps(s, true);
      ev_w[s] = dev.charge_async_write(bytes, deps);
      if (acc) acc->transfer_in_ns += ctx.pcie_model().transfer_ns(bytes);
      if (f && s >= resume_strip) {
        fault::check(fault::Site::kStripTransfer);
        const std::size_t base_row = base_row_of(s);
        const std::size_t b = buf_of(s);
        for (std::size_t m : f->active) {
          FunctionalCtx::Member& mem = f->members[m];
          f->copy_full_to_local(mem.host->data(), mem.dev[b].data(), base_row, frontier_lo,
                                d1, si.r0, si.r1);
          if (fold_halo) {
            f->copy_full_to_local(mem.host->data(), mem.dev[b].data(), base_row,
                                  frontier_lo, d1, si.r0 - 1, si.r0);
          }
        }
      }
    };

    auto enqueue_h = [&](std::size_t s) {
      const StripInfo& si = info[s];
      if (s == s_first || si.halo_j_lo >= si.halo_j_hi) return;
      slot_deps(s, false);
      ev_h[s] = dev.charge_internal_copy((si.halo_j_hi - si.halo_j_lo) * esize, deps);
      if (f && s >= resume_strip) {
        const std::size_t b = buf_of(s);
        for (std::size_t m : f->active) {
          FunctionalCtx::Member& mem = f->members[m];
          if (s == resume_strip && s > s_first) {
            // The previous strip was charge-only on this resumed run; its
            // buffer is poison, but the restored host grid holds the halo
            // row's final values. The SIMULATED charge above is the
            // normal internal copy either way — resume never perturbs
            // the schedule.
            f->copy_full_to_local(mem.host->data(), mem.dev[b].data(), base_row_of(s),
                                  frontier_lo, d1, si.r0 - 1, si.r0);
          } else {
            f->copy_local_row(mem.dev[buf_of(s - 1)].data(), base_row_of(s - 1),
                              mem.dev[b].data(), base_row_of(s), si.r0 - 1, si.halo_j_lo,
                              si.halo_j_hi);
          }
        }
      }
    };

    auto enqueue_k = [&](std::size_t s) {
      const StripInfo& si = info[s];
      const std::size_t b = buf_of(s);
      const std::size_t base_row = base_row_of(s);
      bool first_launch = true;
      auto launch = [&](const ocl::LaunchShape& shape) {
        deps.clear();
        if (first_launch) {
          deps.push_back(ev_w[s]);
          first_launch = false;
        }
        ev_k[s] = dev.charge_kernel(shape, deps);
        if (acc) {
          ++acc->kernel_launches;
          acc->kernel_busy_ns +=
              shape.groups == 0
                  ? dev.model().kernel_ns(shape.items, shape.tsize_units,
                                          shape.bytes_per_item)
                  : dev.model().tiled_kernel_ns(shape.groups, shape.serial_steps,
                                                shape.syncs, shape.tsize_units,
                                                shape.bytes_per_item);
        }
      };
      if (ph.gpu_tile <= 1) {
        // Untiled: one kernel per diagonal, items clipped to the strip.
        for (std::size_t d = d0; d < d1; ++d) {
          const std::size_t n = diag_rows_in(dim, d, si.r0, si.r1);
          if (n == 0) continue;
          ocl::LaunchShape shape;
          shape.items = n;
          shape.tsize_units = in.tsize;
          shape.bytes_per_item = esize;
          launch(shape);
          if (f && s >= resume_strip) {
            const std::size_t lo = std::max(diag_row_lo(dim, d), si.r0);
            const std::size_t hi = std::min(diag_row_hi(dim, d), si.r1 - 1);
            for (std::size_t m : f->active) {
              std::byte* base = f->members[m].dev[b].data();
              for (std::size_t i = lo; i <= hi; ++i) {
                f->compute_cell_local(base, base_row, i, d - i);
              }
            }
          }
        }
      } else {
        // Tiled: one kernel per tile-diagonal, work-groups clipped to the
        // strip's tile rows; tiles straddling the strip boundary relaunch
        // with their rows clamped (honest strip-execution cost).
        const std::size_t g = ph.gpu_tile;
        const std::size_t Mg = (dim + g - 1) / g;
        const std::size_t I_strip_lo = si.r0 / g;
        const std::size_t I_strip_hi = (si.r1 - 1) / g;
        for (std::size_t k = 0; k < 2 * Mg - 1; ++k) {
          const std::size_t span_lo = k * g;
          const std::size_t span_hi = (k + 2) * g - 2;  // inclusive
          if (span_lo >= d1 || span_hi < d0) continue;
          const std::size_t I_lo = std::max(diag_row_lo(Mg, k), I_strip_lo);
          const std::size_t I_hi = std::min(diag_row_hi(Mg, k), I_strip_hi);
          if (I_lo > I_hi) continue;
          ocl::LaunchShape shape;
          shape.groups = I_hi - I_lo + 1;
          shape.serial_steps = 2 * g - 1;
          shape.syncs = 2 * g - 1;
          shape.tsize_units = in.tsize;
          shape.bytes_per_item = esize;
          shape.items = shape.groups * g * g;
          launch(shape);
          if (f && s >= resume_strip) {
            for (std::size_t I = I_lo; I <= I_hi; ++I) {
              const std::size_t J = k - I;
              const std::size_t i0 = std::max(I * g, si.r0);
              const std::size_t i1 = std::min({(I + 1) * g, dim, si.r1});
              for (std::size_t m : f->active) {
                f->lowered->tile_local(f->members[m].dev[b].data(), base_row, i0, i1,
                                       J * g, std::min((J + 1) * g, dim), d0, d1);
              }
            }
          }
        }
      }
    };

    auto enqueue_r = [&](std::size_t s) {
      const StripInfo& si = info[s];
      const std::size_t bytes = si.down_cells * esize;
      deps.clear();
      deps.push_back(ev_k[s]);
      ev_r[s] = dev.charge_async_read(bytes, deps);
      if (acc) acc->transfer_out_ns += ctx.pcie_model().transfer_ns(bytes);
      if (f && s >= resume_strip) {
        fault::check(fault::Site::kStripTransfer);
        const std::size_t b = buf_of(s);
        for (std::size_t m : f->active) {
          FunctionalCtx::Member& mem = f->members[m];
          f->copy_local_to_full(mem.dev[b].data(), base_row_of(s), mem.host->data(), d0,
                                d1, si.r0, si.r1);
        }
        f->maybe_checkpoint(phase_index, s + 1);
      }
    };

    if (B > 1) enqueue_w(s_first);
    for (std::size_t s = s_first; s <= s_last; ++s) {
      enqueue_h(s);
      if (B == 1) {
        enqueue_w(s);
      } else if (s + 1 <= s_last) {
        enqueue_w(s + 1);
      }
      enqueue_k(s);
      enqueue_r(s);
    }
    return ctx.finish_time();
  };

  ocl::Context ctx(profile_);
  if (trace) ctx.attach_trace(trace);
  out.ns = walk(ph.strip_buffers, ctx, fctx, &out);
  if (ph.strip_buffers > 1) {
    // Serialized-strip baseline: identical strips, 1-buffer pool, fresh
    // timelines, no functional work, no trace, no fault sites.
    ocl::Context baseline(profile_);
    out.serialized_ns = walk(1, baseline, nullptr, nullptr);
  } else {
    out.serialized_ns = out.ns;
  }
}

void HybridExecutor::gpu_phase_multi(const InputParams& in, const PhaseDesc& ph,
                                     FunctionalCtx* fctx, ocl::Trace* trace,
                                     PhaseTiming& out) const {
  const std::size_t dim = in.dim;
  const std::size_t esize = in.elem_bytes();
  const std::size_t d0 = ph.d_begin;
  const std::size_t d1 = ph.d_end;
  const std::size_t frontier_lo = d0 >= 2 ? d0 - 2 : 0;
  const auto n = static_cast<std::size_t>(ph.gpu_count);
  const long long h = ph.halo;  // redundancy depth (>= 0)

  // Fixed row split: device g owns rows [split[g], split[g+1]).
  std::vector<long long> split(n + 1);
  for (std::size_t g = 0; g <= n; ++g) {
    split[g] = static_cast<long long>(dim * g / n);
  }
  // Per-device wedge floor: the initial transfer / every swap across
  // boundary split[g] delivers rows >= wedge_lo[g].
  std::vector<long long> wedge_lo(n, 0);
  for (std::size_t g = 1; g < n; ++g) wedge_lo[g] = std::max(0LL, split[g] - h - 1);

  ocl::Context ctx(profile_);
  if (trace) ctx.attach_trace(trace);

  // Initial transfers: device g gets rows [wedge_lo[g], split[g+1]) of the
  // frontier + region (its own band plus the initial halo wedge).
  for (std::size_t g = 0; g < n; ++g) {
    std::size_t cells_in = 0;
    for (std::size_t d = frontier_lo; d < d1; ++d) {
      cells_in += diag_rows_in(dim, d, static_cast<std::size_t>(wedge_lo[g]),
                               static_cast<std::size_t>(split[g + 1]));
    }
    ctx.device(g).charge_write(cells_in * esize);
    out.transfer_in_ns += ctx.pcie_model().transfer_ns(cells_in * esize);
    if (fctx) {
      fault::check(fault::Site::kGpuTransfer);
      for (std::size_t m : fctx->active) {
        FunctionalCtx::Member& mem = fctx->members[m];
        fctx->copy_diag_rows(mem.host->data(), mem.dev[g].data(), frontier_lo, d1,
                             static_cast<std::size_t>(wedge_lo[g]),
                             static_cast<std::size_t>(split[g + 1]));
      }
    }
  }

  // Validity frontier of each device's copy on the previous two
  // diagonals: the lowest row whose value is current.
  auto frontier_v = [&](std::size_t g, long long d) -> long long {
    if (g == 0) return kValidAll;  // device 0 needs nothing from upstream
    if (d < ll(frontier_lo) || d < 0) return kValidAll;
    return wedge_lo[g] <= ll(diag_row_lo(dim, static_cast<std::size_t>(d))) ? kValidAll
                                                                            : wedge_lo[g];
  };
  std::vector<long long> v_dm1(n);
  std::vector<long long> v_dm2(n);
  for (std::size_t g = 0; g < n; ++g) {
    v_dm1[g] = frontier_v(g, ll(d0) - 1);
    v_dm2[g] = frontier_v(g, ll(d0) - 2);
  }

  for (std::size_t d = d0; d < d1; ++d) {
    const long long i_lo = ll(diag_row_lo(dim, d));
    const long long i_hi = ll(diag_row_hi(dim, d));

    // Plan each device's row range; fire the chained halo swaps first so
    // their transfers precede this diagonal's kernels on the timelines.
    std::vector<bool> active(n, false);
    std::vector<long long> compute_lo(n, 0);
    std::vector<long long> compute_hi(n, -1);
    for (std::size_t g = 0; g < n; ++g) {
      const long long own_lo = std::max(split[g], i_lo);
      const long long own_hi = std::min(split[g + 1] - 1, i_hi);
      compute_hi[g] = own_hi;
      if (own_lo > own_hi) continue;  // no owned cells on this diagonal
      active[g] = true;
      long long can_lo = std::max({std::max(v_dm1[g], v_dm2[g]) + 1, i_lo});
      if (can_lo > own_lo) {
        // Halo swap: device g-1 -> host -> device g, strips
        // [wedge_lo[g], split[g]) of the two previous diagonals
        // (paper Fig. 3, chained across every internal boundary).
        std::size_t strip_cells = 0;
        for (long long pd = ll(d) - 2; pd <= ll(d) - 1; ++pd) {
          if (pd < 0) continue;
          strip_cells += diag_rows_in(dim, static_cast<std::size_t>(pd),
                                      static_cast<std::size_t>(wedge_lo[g]),
                                      static_cast<std::size_t>(split[g]));
        }
        const std::size_t bytes = strip_cells * esize;
        ctx.device(g - 1).charge_copy_to(ctx.device(g), bytes);
        out.swap_ns += 2.0 * ctx.pcie_model().transfer_ns(bytes);
        ++out.swap_count;
        if (fctx) {
          for (long long pd = ll(d) - 2; pd <= ll(d) - 1; ++pd) {
            if (pd < 0) continue;
            for (std::size_t m : fctx->active) {
              FunctionalCtx::Member& mem = fctx->members[m];
              fctx->copy_diag_rows(mem.dev[g - 1].data(), mem.dev[g].data(),
                                   static_cast<std::size_t>(pd),
                                   static_cast<std::size_t>(pd) + 1,
                                   static_cast<std::size_t>(wedge_lo[g]),
                                   static_cast<std::size_t>(split[g]));
            }
          }
        }
        v_dm1[g] = std::min(v_dm1[g], wedge_lo[g]);
        v_dm2[g] = std::min(v_dm2[g], wedge_lo[g]);
        can_lo = std::max({std::max(v_dm1[g], v_dm2[g]) + 1, i_lo});
      }
      compute_lo[g] = can_lo;
      out.redundant_cells += static_cast<std::size_t>(std::max(0LL, own_lo - can_lo));
    }

    // Launch this diagonal's kernels (devices run concurrently).
    for (std::size_t g = 0; g < n; ++g) {
      if (!active[g]) {
        v_dm2[g] = v_dm1[g];
        v_dm1[g] = kValidNone;  // computed nothing: its copy of d is stale
        continue;
      }
      ocl::LaunchShape shape;
      shape.items = static_cast<std::size_t>(compute_hi[g] - compute_lo[g] + 1);
      shape.tsize_units = in.tsize;
      shape.bytes_per_item = esize;
      ctx.device(g).charge_kernel(shape);
      ++out.kernel_launches;
      if (fctx) {
        for (std::size_t m : fctx->active) {
          std::byte* storage = fctx->members[m].dev[g].data();
          for (long long i = compute_lo[g]; i <= compute_hi[g]; ++i) {
            fctx->compute_cell(storage, static_cast<std::size_t>(i),
                               d - static_cast<std::size_t>(i));
          }
        }
      }
      v_dm2[g] = v_dm1[g];
      v_dm1[g] = compute_lo[g] <= i_lo ? kValidAll : compute_lo[g];
    }
  }

  // Bulk transfers out: each device returns its owned region cells.
  for (std::size_t g = 0; g < n; ++g) {
    std::size_t cells_out = 0;
    for (std::size_t d = d0; d < d1; ++d) {
      cells_out += diag_rows_in(dim, d, static_cast<std::size_t>(split[g]),
                                static_cast<std::size_t>(split[g + 1]));
    }
    ctx.device(g).charge_read(cells_out * esize);
    out.transfer_out_ns += ctx.pcie_model().transfer_ns(cells_out * esize);
    if (fctx) {
      fault::check(fault::Site::kGpuTransfer);
      for (std::size_t m : fctx->active) {
        FunctionalCtx::Member& mem = fctx->members[m];
        fctx->copy_diag_rows(mem.dev[g].data(), mem.host->data(), d0, d1,
                             static_cast<std::size_t>(split[g]),
                             static_cast<std::size_t>(split[g + 1]));
      }
    }
  }

  out.ns = ctx.finish_time();
}

}  // namespace wavetune::core
