// Application-facing description of a wavefront computation.
//
// WavefrontSpec is the type-erased ABI the executor consumes: a cell
// kernel over opaque byte records plus the paper's input parameters
// (dim, tsize, dsize). Problem<T> below is the typed facade most users
// (and all examples) should prefer.
#pragma once

#include <cstddef>
#include <functional>
#include <stdexcept>

#include "core/params.hpp"

namespace wavetune::core {

/// Type-erased cell kernel.
/// Computes cell (i, j) into `out`. Neighbour pointers are null on the
/// grid borders (i == 0 and/or j == 0). The kernel must be pure in the
/// neighbours (no hidden dependence on other cells) and thread-safe for
/// concurrent cells of one diagonal.
using ByteKernel =
    std::function<void(std::size_t i, std::size_t j, const std::byte* west,
                       const std::byte* north, const std::byte* northwest, std::byte* out)>;

struct WavefrontSpec {
  std::size_t dim = 0;
  std::size_t elem_bytes = 0;
  double tsize = 0.0;  ///< cost-model granularity, reference-core units
  int dsize = 0;       ///< cost-model data granularity (floats per element)
  ByteKernel kernel;

  InputParams inputs() const { return InputParams{dim, tsize, dsize}; }

  void validate() const {
    if (dim == 0) throw std::invalid_argument("WavefrontSpec: dim == 0");
    if (elem_bytes == 0) throw std::invalid_argument("WavefrontSpec: elem_bytes == 0");
    if (!kernel) throw std::invalid_argument("WavefrontSpec: null kernel");
    if (tsize < 0.0) throw std::invalid_argument("WavefrontSpec: negative tsize");
  }
};

/// Typed wavefront problem over cell type T (trivially copyable).
///
///   struct Score { float v; };
///   Problem<Score> p(n, /*tsize=*/0.5, /*dsize=*/0,
///     [](std::size_t i, std::size_t j, const Score* w, const Score* n_,
///        const Score* nw) -> Score { ... });
///   WavefrontSpec spec = p.spec();
template <typename T>
class Problem {
public:
  /// Typed kernel: returns the new cell value; neighbour pointers are null
  /// at the borders.
  using Kernel = std::function<T(std::size_t i, std::size_t j, const T* west, const T* north,
                                 const T* northwest)>;

  Problem(std::size_t dim, double tsize, int dsize, Kernel kernel)
      : dim_(dim), tsize_(tsize), dsize_(dsize), kernel_(std::move(kernel)) {
    static_assert(std::is_trivially_copyable_v<T>,
                  "Problem<T>: cell type must be trivially copyable");
    if (!kernel_) throw std::invalid_argument("Problem: null kernel");
  }

  std::size_t dim() const { return dim_; }

  WavefrontSpec spec() const {
    WavefrontSpec s;
    s.dim = dim_;
    s.elem_bytes = sizeof(T);
    s.tsize = tsize_;
    s.dsize = dsize_;
    Kernel k = kernel_;
    s.kernel = [k](std::size_t i, std::size_t j, const std::byte* w, const std::byte* n,
                   const std::byte* nw, std::byte* out) {
      const T* tw = reinterpret_cast<const T*>(w);
      const T* tn = reinterpret_cast<const T*>(n);
      const T* tnw = reinterpret_cast<const T*>(nw);
      const T value = k(i, j, tw, tn, tnw);
      *reinterpret_cast<T*>(out) = value;
    };
    s.validate();
    return s;
  }

private:
  std::size_t dim_;
  double tsize_;
  int dsize_;
  Kernel kernel_;
};

}  // namespace wavetune::core
