// Application-facing description of a wavefront computation.
//
// WavefrontSpec is the type-erased ABI the executor consumes: a kernel
// over opaque byte records plus the paper's input parameters
// (dim, tsize, dsize). Problem<T> below is the typed facade most users
// (and all examples) should prefer.
//
// The kernel ABI is a three-rung ladder of widening granularity:
//
//   cell    (ByteKernel)    one type-erased call per cell — the simplest
//                           contract, what Problem<T> wraps.
//   segment (SegmentKernel) one type-erased call per contiguous row run —
//                           neighbour pointers slide inside the call.
//   tile    (TileKernel)    one PLAIN-FUNCTION call per rows x cols block
//                           (core/lowered.hpp) — the row loop, pointer
//                           advance and border handling all live inside
//                           the kernel; nothing type-erased remains on
//                           the dispatch path.
//
// Each rung has a fallback adapter onto the rung below
// (make_segment_fallback, make_tile_fallback), so a spec shipping only a
// cell kernel still executes through the widest ABI — at the narrower
// rung's dispatch cost. The execution engine never dispatches the rungs
// directly: WavefrontSpec::lower() resolves the widest available rung
// into a core::LoweredKernel exactly once per compiled plan / run, and
// the hot loops call only that.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>

#include "core/lowered.hpp"
#include "core/params.hpp"

namespace wavetune::core {

/// FNV-1a over a byte string: a cheap deterministic digest for building
/// WavefrontSpec::content_key values out of captured request payloads.
inline std::uint64_t fnv1a(std::string_view bytes) {
  std::uint64_t h = 1469598103934665603ull;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return h;
}

/// Type-erased cell kernel.
/// Computes cell (i, j) into `out`. Neighbour pointers are null on the
/// grid borders (i == 0 and/or j == 0). The kernel must be pure in the
/// neighbours (no hidden dependence on other cells) and thread-safe for
/// concurrent cells of one diagonal.
using ByteKernel =
    std::function<void(std::size_t i, std::size_t j, const std::byte* west,
                       const std::byte* north, const std::byte* northwest, std::byte* out)>;

/// Type-erased batched row-segment kernel.
///
/// Computes the contiguous run of cells (i, j) for j in [j0, j1) in ONE
/// call, writing elem_bytes-strided results starting at `out` (which points
/// at cell (i, j0) of row-major full-grid storage). This is the hot-path
/// ABI: the execution engine dispatches one call per row-span instead of
/// one type-erased call per cell.
///
/// Pointer contract (all pointers are into the same row-major storage):
///   - `north` points at cell (i-1, j0); null iff i == 0. The north row is
///     contiguous: the north neighbour of cell j is north + (j-j0)*elem.
///   - `west` points at cell (i, j0-1); null iff j0 == 0. For j > j0 the
///     west neighbour is the previously computed output cell.
///   - `northwest` points at cell (i-1, j0-1); null iff i == 0 or j0 == 0.
///     For j > j0 the northwest neighbour is the north row's previous cell.
///
/// Like ByteKernel, the kernel must be pure in the neighbours and safe to
/// call concurrently for disjoint segments of one wavefront step.
using SegmentKernel = std::function<void(
    std::size_t i, std::size_t j0, std::size_t j1, const std::byte* west,
    const std::byte* north, const std::byte* northwest, std::byte* out)>;

/// Fallback adapter: wraps a per-cell kernel as a segment kernel by walking
/// the run cell-by-cell with sliding neighbour pointers. Specs that ship no
/// native SegmentKernel execute through this, so every per-cell call site
/// keeps working unchanged (at per-cell dispatch cost).
inline SegmentKernel make_segment_fallback(ByteKernel kernel, std::size_t elem_bytes) {
  if (!kernel) throw std::invalid_argument("make_segment_fallback: null kernel");
  if (elem_bytes == 0) throw std::invalid_argument("make_segment_fallback: elem_bytes == 0");
  return [kernel = std::move(kernel), elem_bytes](
             std::size_t i, std::size_t j0, std::size_t j1, const std::byte* west,
             const std::byte* north, const std::byte* northwest, std::byte* out) {
    for (std::size_t j = j0; j < j1; ++j) {
      kernel(i, j, west, north, northwest, out);
      west = out;
      northwest = north;
      if (north) north += elem_bytes;
      out += elem_bytes;
    }
  };
}

/// Fallback adapter: wraps a segment kernel as a tile kernel by walking
/// the block row-by-row, deriving each row's neighbour pointers from the
/// block corner (rows past the first read their north row from the
/// block's own output; a null `west` at the corner means the j0 == 0
/// border for every row, a null `north` only affects row i0). Specs that
/// ship no native TileKernel lower through this, so every existing spec
/// keeps working — at one type-erased call per tile row.
inline TileKernel make_tile_fallback(SegmentKernel segment, std::size_t elem_bytes) {
  if (!segment) throw std::invalid_argument("make_tile_fallback: null segment kernel");
  if (elem_bytes == 0) throw std::invalid_argument("make_tile_fallback: elem_bytes == 0");
  struct Ctx {
    SegmentKernel seg;
    std::size_t elem;
  };
  auto ctx = std::make_shared<const Ctx>(Ctx{std::move(segment), elem_bytes});
  TileKernel t;
  t.fn = [](const void* pv, std::size_t i0, std::size_t i1, std::size_t j0, std::size_t j1,
            std::size_t stride, const std::byte* w, const std::byte* n, const std::byte* nw,
            std::byte* out) {
    const Ctx& c = *static_cast<const Ctx*>(pv);
    for (std::size_t i = i0; i < i1; ++i) {
      const std::size_t r = i - i0;
      std::byte* orow = out + r * stride;
      // Row r > 0: the north row is the block row above (always present in
      // storage since i - 1 >= i0 >= 0); west/northwest exist iff j0 > 0,
      // which the corner `w` witnesses.
      const std::byte* wr = w ? orow - c.elem : nullptr;
      const std::byte* nr = r == 0 ? n : orow - stride;
      const std::byte* nwr = r == 0 ? nw : (w ? orow - stride - c.elem : nullptr);
      c.seg(i, j0, j1, wr, nr, nwr, orow);
    }
  };
  t.ctx = std::move(ctx);
  return t;
}

struct WavefrontSpec {
  std::size_t dim = 0;
  std::size_t elem_bytes = 0;
  double tsize = 0.0;  ///< cost-model granularity, reference-core units
  int dsize = 0;       ///< cost-model data granularity (floats per element)
  ByteKernel kernel;

  /// Content identity of the kernel, folded into api::Engine's plan-cache
  /// key. Kernels capture their payload by value (sequences, payoff
  /// seeds, ...), which the cache cannot see — a spec whose kernel
  /// depends on anything beyond (dim, tsize, dsize) MUST identify that
  /// content here or two different requests with one signature alias to
  /// the same cached plan. Prefer embedding the exact (length-prefixed)
  /// payload, as the bundled apps do; fnv1a above is the cheaper
  /// trade-off for payloads too large to keep in a map key (64-bit
  /// digest: collisions are unlikely, not impossible). Empty is safe only
  /// for kernels that are pure functions of (i, j) and the neighbours —
  /// the engine refuses to cache identity-less executable specs.
  std::string content_key;

  /// Optional batched row-segment kernel (rung two of the ladder). When
  /// set, it MUST compute exactly the same values as `kernel` (the
  /// equivalence test suite enforces this for the bundled apps); when
  /// null, consumers fall back to the per-cell kernel via
  /// make_segment_fallback.
  SegmentKernel segment;

  /// Optional native tile kernel (rung three — the widest ABI, see
  /// core/lowered.hpp for the full contract). When set, it MUST compute
  /// exactly the same values as `kernel`/`segment`; when null, lower()
  /// adapts the next rung down. All bundled apps ship one.
  TileKernel tile;

  /// The segment-granular view: the native segment kernel when present,
  /// the wrapped per-cell kernel otherwise. NOT for hot loops — this
  /// constructs a std::function; resolve once per run (or use lower())
  /// and pass the result by reference.
  SegmentKernel segment_or_fallback() const {
    return segment ? segment : make_segment_fallback(kernel, elem_bytes);
  }

  /// Plan-time lowering: resolves the widest available rung into the
  /// plain-function dispatch form the execution engine consumes. Called
  /// exactly once per compiled plan (api::Engine::compile) or per direct
  /// run (top of HybridExecutor::run/run_serial) — never inside a
  /// per-tile, per-diagonal, or per-phase loop.
  LoweredKernel lower() const {
    LoweredKernel k;
    k.dim = dim;
    k.elem_bytes = elem_bytes;
    if (tile) {
      k.fn = tile.fn;
      k.ctx = tile.ctx.get();
      k.keepalive = tile.ctx;
      k.native = true;
    } else {
      TileKernel fallback = make_tile_fallback(segment_or_fallback(), elem_bytes);
      k.fn = fallback.fn;
      k.ctx = fallback.ctx.get();
      k.keepalive = std::move(fallback.ctx);
    }
    return k;
  }

  InputParams inputs() const { return InputParams{dim, tsize, dsize}; }

  void validate() const {
    if (dim == 0) throw std::invalid_argument("WavefrontSpec: dim == 0");
    if (elem_bytes == 0) throw std::invalid_argument("WavefrontSpec: elem_bytes == 0");
    if (!kernel) throw std::invalid_argument("WavefrontSpec: null kernel");
    inputs().validate();  // finite non-negative tsize, dsize >= 0
  }
};

/// Typed wavefront problem over cell type T (trivially copyable).
///
///   struct Score { float v; };
///   Problem<Score> p(n, /*tsize=*/0.5, /*dsize=*/0,
///     [](std::size_t i, std::size_t j, const Score* w, const Score* n_,
///        const Score* nw) -> Score { ... });
///   WavefrontSpec spec = p.spec();
template <typename T>
class Problem {
public:
  /// Typed kernel: returns the new cell value; neighbour pointers are null
  /// at the borders.
  using Kernel = std::function<T(std::size_t i, std::size_t j, const T* west, const T* north,
                                 const T* northwest)>;

  /// Typed batched kernel: computes cells (i, j0..j1) into `out` (which
  /// points at cell (i, j0)). Same pointer contract as core::SegmentKernel
  /// with T-typed pointers: `north` is the contiguous north row (null iff
  /// i == 0), `west`/`northwest` are the neighbours of the FIRST cell (null
  /// on the j0 == 0 border); inside the run they slide over the output and
  /// north rows.
  using Segment = std::function<void(std::size_t i, std::size_t j0, std::size_t j1,
                                     const T* west, const T* north, const T* northwest, T* out)>;

  Problem(std::size_t dim, double tsize, int dsize, Kernel kernel)
      : dim_(dim), tsize_(tsize), dsize_(dsize), kernel_(std::move(kernel)) {
    static_assert(std::is_trivially_copyable_v<T>,
                  "Problem<T>: cell type must be trivially copyable");
    if (!kernel_) throw std::invalid_argument("Problem: null kernel");
  }

  /// Attaches a typed batched kernel; it must compute exactly the same
  /// values as the per-cell kernel. Returns *this for chaining.
  Problem& with_segment(Segment segment) {
    segment_ = std::move(segment);
    return *this;
  }

  /// Declares the kernel's content identity (see
  /// WavefrontSpec::content_key). Required whenever the kernel captures
  /// per-request data. Returns *this for chaining.
  Problem& with_content_key(std::string key) {
    content_key_ = std::move(key);
    return *this;
  }

  std::size_t dim() const { return dim_; }

  WavefrontSpec spec() const {
    WavefrontSpec s;
    s.dim = dim_;
    s.elem_bytes = sizeof(T);
    s.tsize = tsize_;
    s.dsize = dsize_;
    s.content_key = content_key_;
    Kernel k = kernel_;
    s.kernel = [k](std::size_t i, std::size_t j, const std::byte* w, const std::byte* n,
                   const std::byte* nw, std::byte* out) {
      const T* tw = reinterpret_cast<const T*>(w);
      const T* tn = reinterpret_cast<const T*>(n);
      const T* tnw = reinterpret_cast<const T*>(nw);
      const T value = k(i, j, tw, tn, tnw);
      *reinterpret_cast<T*>(out) = value;
    };
    if (segment_) {
      Segment seg = segment_;
      s.segment = [seg](std::size_t i, std::size_t j0, std::size_t j1, const std::byte* w,
                        const std::byte* n, const std::byte* nw, std::byte* out) {
        seg(i, j0, j1, reinterpret_cast<const T*>(w), reinterpret_cast<const T*>(n),
            reinterpret_cast<const T*>(nw), reinterpret_cast<T*>(out));
      };
    }
    s.validate();
    return s;
  }

private:
  std::size_t dim_;
  double tsize_;
  int dsize_;
  Kernel kernel_;
  Segment segment_;
  std::string content_key_;
};

}  // namespace wavetune::core
