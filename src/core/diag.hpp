// Diagonal geometry of a dim x dim wavefront grid.
//
// Diagonal d (0-based) contains the cells (i, j) with i + j == d.
// There are 2*dim - 1 diagonals; the main (longest) diagonal is d = dim-1.
// These helpers are the single source of truth for index arithmetic across
// the CPU executor, the GPU partitioner and the cost model.
#pragma once

#include <algorithm>
#include <cstddef>
#include <utility>

namespace wavetune::core {

/// Total number of diagonals of a dim x dim grid.
constexpr std::size_t num_diagonals(std::size_t dim) { return dim == 0 ? 0 : 2 * dim - 1; }

/// Index of the main (longest) diagonal.
constexpr std::size_t main_diagonal(std::size_t dim) { return dim == 0 ? 0 : dim - 1; }

/// Number of cells on diagonal d (0 if d is out of range).
constexpr std::size_t diag_len(std::size_t dim, std::size_t d) {
  if (dim == 0 || d >= num_diagonals(dim)) return 0;
  return std::min({d + 1, dim, 2 * dim - 1 - d});
}

/// Smallest row index i on diagonal d.
constexpr std::size_t diag_row_lo(std::size_t dim, std::size_t d) {
  return d >= dim ? d - dim + 1 : 0;
}

/// Largest row index i on diagonal d (inclusive). Requires d in range.
constexpr std::size_t diag_row_hi(std::size_t dim, std::size_t d) {
  return std::min(d, dim - 1);
}

/// Number of cells on diagonal d with row index in [row_begin, row_end).
constexpr std::size_t diag_rows_in(std::size_t dim, std::size_t d, std::size_t row_begin,
                                   std::size_t row_end) {
  if (diag_len(dim, d) == 0 || row_begin >= row_end) return 0;
  const std::size_t lo = std::max(diag_row_lo(dim, d), row_begin);
  const std::size_t hi_excl = std::min(diag_row_hi(dim, d) + 1, row_end);
  return hi_excl > lo ? hi_excl - lo : 0;
}

/// Column span [first, second) of row i within columns [col_lo, col_hi)
/// clamped to the diagonal band [d_begin, d_end) (i + j in the band).
/// Empty (first >= second) when the row misses the band. The single source
/// of the clamp algebra shared by every batched hot loop (CPU schedulers,
/// the lowered-kernel dispatch in core/lowered.hpp, the GPU partitioner).
constexpr std::pair<std::size_t, std::size_t> row_band_span(std::size_t i, std::size_t d_begin,
                                                            std::size_t d_end,
                                                            std::size_t col_lo,
                                                            std::size_t col_hi) {
  if (d_end <= i) return {0, 0};
  const std::size_t band_lo = d_begin > i ? d_begin - i : 0;
  return {std::max(col_lo, band_lo), std::min(col_hi, d_end - i)};
}

/// Total cells over diagonals [d_begin, d_end).
constexpr std::size_t cells_in_diag_range(std::size_t dim, std::size_t d_begin,
                                          std::size_t d_end) {
  std::size_t n = 0;
  for (std::size_t d = d_begin; d < d_end; ++d) n += diag_len(dim, d);
  return n;
}

}  // namespace wavetune::core
