// Exhaustive search-space exploration (paper §3.1.1 / §4.1).
//
// Every configuration of the ParamSpace is evaluated through the cost
// model (HybridExecutor::estimate); configurations whose simulated runtime
// exceeds the 90-second threshold are recorded as censored — "any point
// that exceeds this threshold limit is already a very bad configuration" —
// and excluded from averages but kept for the record counts. The serial
// baseline ignores the threshold, exactly as the paper does.
#pragma once

#include <optional>
#include <vector>

#include "core/executor.hpp"
#include "core/params.hpp"
#include "autotune/param_space.hpp"
#include "sim/system_profile.hpp"

namespace wavetune::autotune {

struct SearchRecord {
  core::TunableParams params;  ///< normalized configuration
  /// Phase-structure axis: the GPU band was split into this many
  /// contiguous sub-band phases (1 = the paper's single-band program).
  /// The evaluated schedule is
  /// core::split_gpu_band(core::plan_phases(in, params), band_split).
  int band_split = 1;
  /// Streaming-strip axis: the schedule was executed as row strips of
  /// this many rows (core::apply_strips; 0 = whole-grid resident).
  std::size_t strip_rows = 0;
  double rtime_ns = 0.0;       ///< simulated runtime
  bool censored = false;       ///< exceeded the runtime threshold
};

struct InstanceResult {
  core::InputParams instance;
  double serial_ns = 0.0;                ///< sequential baseline (never censored)
  std::vector<SearchRecord> records;     ///< every evaluated configuration
  std::size_t censored_count = 0;

  /// Best (fastest uncensored) record; empty when all are censored.
  std::optional<SearchRecord> best() const;
  /// Fastest uncensored record restricted to CPU-only configurations.
  std::optional<SearchRecord> best_cpu_only() const;
  /// Fastest uncensored record among GPU-using configurations.
  std::optional<SearchRecord> best_gpu() const;
  /// The k fastest uncensored records, ascending by runtime.
  std::vector<SearchRecord> top_k(std::size_t k) const;
  /// Mean/SD of uncensored runtimes (the Fig. 7 "AVG"/"S.D." series).
  double mean_rtime_ns() const;
  double stddev_rtime_ns() const;
};

class ExhaustiveSearch {
public:
  ExhaustiveSearch(sim::SystemProfile profile, ParamSpace space,
                   double threshold_seconds = 90.0);

  const sim::SystemProfile& profile() const { return profile_; }
  const ParamSpace& space() const { return space_; }
  double threshold_seconds() const { return threshold_s_; }

  /// Evaluates all configurations of one instance.
  InstanceResult search_instance(const core::InputParams& instance) const;

  /// Full sweep over the space's instances.
  std::vector<InstanceResult> sweep() const;

private:
  sim::SystemProfile profile_;
  ParamSpace space_;
  double threshold_s_;
  core::HybridExecutor executor_;
};

}  // namespace wavetune::autotune
