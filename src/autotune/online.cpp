#include "autotune/online.hpp"

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

namespace wavetune::autotune {

namespace {

/// Candidate neighbour moves of one configuration.
std::vector<core::TunableParams> neighbours(const core::TunableParams& base,
                                            const core::InputParams& in, int max_gpus,
                                            double step) {
  std::vector<core::TunableParams> out;
  const auto dim_ll = static_cast<long long>(in.dim);

  auto push = [&](core::TunableParams p) { out.push_back(p.normalized(in.dim)); };

  // cpu-tile ladder (the paper's Table 3 values).
  static const int kTiles[] = {1, 2, 4, 8, 10, 16};
  for (int t : kTiles) {
    if (t != base.cpu_tile) {
      core::TunableParams p = base;
      p.cpu_tile = t;
      push(p);
      break;  // one tile probe per round keeps the budget for band/halo
    }
  }

  // band moves: multiplicative up/down, plus on/off transitions.
  const auto delta = std::max<long long>(1, static_cast<long long>(step * in.dim));
  if (base.band >= 0) {
    core::TunableParams up = base;
    up.band = std::min(dim_ll - 1, base.band + delta);
    push(up);
    core::TunableParams down = base;
    down.band = base.band - delta;  // may go to -1 (CPU-only): that is a move too
    if (down.band < 0) {
      down.band = -1;
      down.halo = -1;
      down.gpus = 0;
    }
    push(down);
  } else if (max_gpus >= 1) {
    core::TunableParams on = base;
    on.band = std::max<long long>(1, dim_ll / 2);
    on.halo = -1;
    push(on);
  }

  // halo moves (only meaningful with >= 2 devices in play).
  if (base.band >= 0 && max_gpus >= 2) {
    const long long hmax = base.gpu_count() >= 3
                               ? core::TunableParams::max_halo_multi(in.dim, base.band,
                                                                     base.gpu_count())
                               : core::TunableParams::max_halo(in.dim, base.band);
    const long long hdelta = std::max<long long>(1, static_cast<long long>(step * hmax));
    if (base.halo >= 0) {
      core::TunableParams up = base;
      up.halo = std::min(hmax, base.halo + hdelta);
      push(up);
      core::TunableParams down = base;
      down.halo = std::max<long long>(0, base.halo - hdelta);
      push(down);
      if (base.gpu_count() == 2) {
        core::TunableParams single = base;  // drop to one device
        single.halo = -1;
        single.gpus = 0;
        push(single);
      }
    } else {
      core::TunableParams dual = base;  // try a second device
      dual.halo = std::min(hmax, hdelta);
      push(dual);
    }
  }

  // gpu-count moves (the N-way extension).
  if (base.band >= 0 && base.gpu_count() >= 2) {
    if (base.gpu_count() < max_gpus) {
      core::TunableParams more = base;
      more.gpus = base.gpu_count() + 1;
      if (more.halo < 0) more.halo = 0;
      push(more);
    }
    if (base.gpu_count() > 2) {
      core::TunableParams fewer = base;
      fewer.gpus = base.gpu_count() - 1;
      push(fewer);
    }
  }
  return out;
}

}  // namespace

OnlineTuneResult refine_online(const core::HybridExecutor& executor,
                               const core::InputParams& instance,
                               const core::TunableParams& seed,
                               const OnlineTunerOptions& options) {
  instance.validate();
  const int max_gpus = executor.profile().gpu_count();

  OnlineTuneResult result;
  result.params = seed.normalized(instance.dim);
  result.seed_rtime_ns = executor.estimate(instance, result.params).rtime_ns;
  result.rtime_ns = result.seed_rtime_ns;
  ++result.evaluations;

  // Memoise probes: revisiting a configuration costs nothing at runtime
  // either (the measurement is cached).
  std::set<std::tuple<int, long long, long long, int, int>> seen;
  auto key = [](const core::TunableParams& p) {
    return std::make_tuple(p.cpu_tile, p.band, p.halo, p.gpu_tile, p.gpus);
  };
  seen.insert(key(result.params));

  double step = options.coarse_step;
  bool improved_at_step = false;
  while (result.evaluations < options.max_evaluations) {
    core::TunableParams best_move = result.params;
    double best_time = result.rtime_ns;
    for (const auto& cand : neighbours(result.params, instance, max_gpus, step)) {
      if (cand.gpu_count() > max_gpus) continue;
      if (!seen.insert(key(cand)).second) continue;
      if (result.evaluations >= options.max_evaluations) break;
      const double t = executor.estimate(instance, cand).rtime_ns;
      ++result.evaluations;
      if (t < best_time) {
        best_time = t;
        best_move = cand;
      }
    }
    if (best_time < result.rtime_ns) {
      result.params = best_move;
      result.rtime_ns = best_time;
      improved_at_step = true;
      continue;
    }
    // No improving neighbour at this step size: refine the step once,
    // then stop.
    if (step == options.coarse_step) {
      step = options.fine_step;
      improved_at_step = false;
      continue;
    }
    if (!improved_at_step) break;
    improved_at_step = false;
  }
  return result;
}

}  // namespace wavetune::autotune
