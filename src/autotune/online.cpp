#include "autotune/online.hpp"

#include <algorithm>
#include <cmath>
#include <set>
#include <string>
#include <vector>

namespace wavetune::autotune {

namespace {

/// Candidate neighbour moves of one configuration.
std::vector<core::TunableParams> neighbours(const core::TunableParams& base,
                                            const core::InputParams& in, int max_gpus,
                                            double step) {
  std::vector<core::TunableParams> out;
  const auto dim_ll = static_cast<long long>(in.dim);

  auto push = [&](core::TunableParams p) { out.push_back(p.normalized(in.dim)); };

  // cpu-tile ladder (the paper's Table 3 values).
  static const int kTiles[] = {1, 2, 4, 8, 10, 16};
  for (int t : kTiles) {
    if (t != base.cpu_tile) {
      core::TunableParams p = base;
      p.cpu_tile = t;
      push(p);
      break;  // one tile probe per round keeps the budget for band/halo
    }
  }

  // band moves: multiplicative up/down, plus on/off transitions.
  const auto delta = std::max<long long>(1, static_cast<long long>(step * in.dim));
  if (base.band >= 0) {
    core::TunableParams up = base;
    up.band = std::min(dim_ll - 1, base.band + delta);
    push(up);
    core::TunableParams down = base;
    down.band = base.band - delta;  // may go to -1 (CPU-only): that is a move too
    if (down.band < 0) {
      down.band = -1;
      down.halo = -1;
      down.gpus = 0;
    }
    push(down);
  } else if (max_gpus >= 1) {
    core::TunableParams on = base;
    on.band = std::max<long long>(1, dim_ll / 2);
    on.halo = -1;
    push(on);
  }

  // halo moves (only meaningful with >= 2 devices in play).
  if (base.band >= 0 && max_gpus >= 2) {
    const long long hmax = base.gpu_count() >= 3
                               ? core::TunableParams::max_halo_multi(in.dim, base.band,
                                                                     base.gpu_count())
                               : core::TunableParams::max_halo(in.dim, base.band);
    const long long hdelta = std::max<long long>(1, static_cast<long long>(step * hmax));
    if (base.halo >= 0) {
      core::TunableParams up = base;
      up.halo = std::min(hmax, base.halo + hdelta);
      push(up);
      core::TunableParams down = base;
      down.halo = std::max<long long>(0, base.halo - hdelta);
      push(down);
      if (base.gpu_count() == 2) {
        core::TunableParams single = base;  // drop to one device
        single.halo = -1;
        single.gpus = 0;
        push(single);
      }
    } else {
      core::TunableParams dual = base;  // try a second device
      dual.halo = std::min(hmax, hdelta);
      push(dual);
    }
  }

  // gpu-count moves (the N-way extension).
  if (base.band >= 0 && base.gpu_count() >= 2) {
    if (base.gpu_count() < max_gpus) {
      core::TunableParams more = base;
      more.gpus = base.gpu_count() + 1;
      if (more.halo < 0) more.halo = 0;
      push(more);
    }
    if (base.gpu_count() > 2) {
      core::TunableParams fewer = base;
      fewer.gpus = base.gpu_count() - 1;
      push(fewer);
    }
  }
  return out;
}

}  // namespace

OnlineTuneResult refine_online(const core::HybridExecutor& executor,
                               const core::InputParams& instance,
                               const core::TunableParams& seed,
                               const OnlineTunerOptions& options) {
  instance.validate();
  const int max_gpus = executor.profile().gpu_count();

  OnlineTuneResult result;
  result.params = seed.normalized(instance.dim);
  result.seed_rtime_ns = executor.estimate(instance, result.params).rtime_ns;
  result.rtime_ns = result.seed_rtime_ns;
  ++result.evaluations;

  // Memoise probes: revisiting a configuration costs nothing at runtime
  // either (the measurement is cached).
  std::set<std::tuple<int, long long, long long, int, int>> seen;
  auto key = [](const core::TunableParams& p) {
    return std::make_tuple(p.cpu_tile, p.band, p.halo, p.gpu_tile, p.gpus);
  };
  seen.insert(key(result.params));

  double step = options.coarse_step;
  bool improved_at_step = false;
  while (result.evaluations < options.max_evaluations) {
    core::TunableParams best_move = result.params;
    double best_time = result.rtime_ns;
    for (const auto& cand : neighbours(result.params, instance, max_gpus, step)) {
      if (cand.gpu_count() > max_gpus) continue;
      if (!seen.insert(key(cand)).second) continue;
      if (result.evaluations >= options.max_evaluations) break;
      const double t = executor.estimate(instance, cand).rtime_ns;
      ++result.evaluations;
      if (t < best_time) {
        best_time = t;
        best_move = cand;
      }
    }
    if (best_time < result.rtime_ns) {
      result.params = best_move;
      result.rtime_ns = best_time;
      improved_at_step = true;
      continue;
    }
    // No improving neighbour at this step size: refine the step once,
    // then stop.
    if (step == options.coarse_step) {
      step = options.fine_step;
      improved_at_step = false;
      continue;
    }
    if (!improved_at_step) break;
    improved_at_step = false;
  }
  return result;
}

// --- profile-driven program refinement ------------------------------------

namespace {

/// Ladder step: the nearest values strictly below/above `current` on the
/// paper's Table 3 ladders.
template <std::size_t N>
void ladder_moves(const int (&ladder)[N], int current, std::vector<int>& out) {
  int below = -1;
  int above = -1;
  for (int v : ladder) {
    if (v < current) below = v;
    if (v > current && above < 0) above = v;
  }
  if (below > 0) out.push_back(below);
  if (above > 0) out.push_back(above);
}

/// All candidate single-mutation neighbours of `base` (validated; invalid
/// mutations are dropped). Mutations keep the diagonal coverage exact by
/// construction — only split/merge touch ranges, and both preserve the
/// partition — so validate() failures here mean a device-specific
/// constraint (e.g. halo bounds after a multi-GPU split), not a coverage
/// bug.
std::vector<core::PhaseProgram> program_neighbours(const core::PhaseProgram& base,
                                                   int max_gpus) {
  static const int kCpuTiles[] = {1, 2, 4, 8, 10, 16};
  static const int kGpuTiles[] = {1, 2, 4, 8, 16};

  std::vector<core::PhaseProgram> out;
  auto push = [&](core::PhaseProgram p) {
    try {
      p.validate();
    } catch (const std::invalid_argument&) {
      return;
    }
    out.push_back(std::move(p));
  };

  for (std::size_t i = 0; i < base.phases.size(); ++i) {
    const core::PhaseDesc& ph = base.phases[i];
    const std::size_t width = ph.d_end - ph.d_begin;

    if (ph.is_cpu()) {
      // Per-phase cpu_tile ladder — the whole point of program-space
      // tuning: a pre-band sliver and a post-band bulk phase can want
      // different tiles.
      std::vector<int> tiles;
      ladder_moves(kCpuTiles, static_cast<int>(ph.cpu_tile), tiles);
      for (int t : tiles) {
        core::PhaseProgram p = base;
        p.phases[i].cpu_tile = static_cast<std::size_t>(t);
        push(std::move(p));
      }
      // Per-phase scheduler flip.
      {
        core::PhaseProgram p = base;
        p.phases[i].scheduler = ph.scheduler == cpu::Scheduler::kBarrier
                                    ? cpu::Scheduler::kDataflow
                                    : cpu::Scheduler::kBarrier;
        push(std::move(p));
      }
      // Re-device to a single GPU.
      if (max_gpus >= 1) {
        core::PhaseProgram p = base;
        p.phases[i].device = core::PhaseDevice::kGpuSingle;
        p.phases[i].gpu_count = 1;
        p.phases[i].gpu_tile = 1;
        p.phases[i].halo = 0;
        push(std::move(p));
      }
    } else if (ph.device == core::PhaseDevice::kGpuSingle) {
      std::vector<int> tiles;
      ladder_moves(kGpuTiles, static_cast<int>(ph.gpu_tile), tiles);
      for (int t : tiles) {
        core::PhaseProgram p = base;
        p.phases[i].gpu_tile = static_cast<std::size_t>(t);
        push(std::move(p));
      }
    }

    // Re-device any GPU phase back to the CPU (the escape hatch when
    // measurements say the offload never pays).
    if (ph.is_gpu()) {
      core::PhaseProgram p = base;
      p.phases[i] = core::PhaseDesc{};
      p.phases[i].device = core::PhaseDevice::kCpu;
      p.phases[i].d_begin = ph.d_begin;
      p.phases[i].d_end = ph.d_end;
      p.phases[i].cpu_tile = std::max<std::size_t>(1, static_cast<std::size_t>(std::max(
                                 1, base.params.cpu_tile)));
      push(std::move(p));
      if (ph.device == core::PhaseDevice::kGpuMulti) {
        core::PhaseProgram q = base;
        q.phases[i].device = core::PhaseDevice::kGpuSingle;
        q.phases[i].gpu_count = 1;
        q.phases[i].gpu_tile = 1;
        q.phases[i].halo = 0;
        push(std::move(q));
      }
    }

    // Split at the diagonal midpoint: both halves inherit the knobs, so
    // a follow-up round can tune them apart.
    if (width >= 2) {
      core::PhaseProgram p = base;
      core::PhaseDesc tail = p.phases[i];
      const std::size_t mid = ph.d_begin + width / 2;
      p.phases[i].d_end = mid;
      tail.d_begin = mid;
      p.phases.insert(p.phases.begin() + static_cast<std::ptrdiff_t>(i) + 1, tail);
      push(std::move(p));
    }

    // Merge with the next phase when both run on the same device class
    // (the merged phase adopts this phase's knobs).
    if (i + 1 < base.phases.size() && base.phases[i + 1].device == ph.device) {
      core::PhaseProgram p = base;
      p.phases[i].d_end = p.phases[i + 1].d_end;
      p.phases.erase(p.phases.begin() + static_cast<std::ptrdiff_t>(i) + 1);
      push(std::move(p));
    }
  }
  return out;
}

}  // namespace

double scaled_program_cost_ns(const core::HybridExecutor& executor,
                              const core::InputParams& instance,
                              const core::PhaseProgram& program,
                              const PhaseCostScales& scales) {
  const core::RunResult est = executor.estimate(instance, program);
  double total = 0.0;
  for (const core::PhaseTiming& t : est.breakdown.phases) {
    total += t.ns * scales.for_device(t.device);
  }
  return total;
}

ProgramTuneResult refine_program(const core::HybridExecutor& executor,
                                 const core::InputParams& instance,
                                 const core::PhaseProgram& seed,
                                 const PhaseCostScales& scales,
                                 const ProgramTuneOptions& options) {
  instance.validate();
  seed.validate();
  const int max_gpus = executor.profile().gpu_count();

  ProgramTuneResult result;
  result.program = seed;
  result.seed_cost_ns = scaled_program_cost_ns(executor, instance, seed, scales);
  result.cost_ns = result.seed_cost_ns;
  ++result.evaluations;

  std::set<std::string> seen;
  seen.insert(seed.describe());

  while (result.evaluations < options.max_evaluations) {
    core::PhaseProgram best_move;
    double best_cost = result.cost_ns;
    bool found = false;
    for (core::PhaseProgram& cand : program_neighbours(result.program, max_gpus)) {
      if (!seen.insert(cand.describe()).second) continue;
      if (result.evaluations >= options.max_evaluations) break;
      const double c = scaled_program_cost_ns(executor, instance, cand, scales);
      ++result.evaluations;
      if (c < best_cost) {
        best_cost = c;
        best_move = std::move(cand);
        found = true;
      }
    }
    if (!found) break;
    result.program = std::move(best_move);
    result.cost_ns = best_cost;
  }
  return result;
}

}  // namespace wavetune::autotune
