// Per-input CPU-scheduler selection through the analytic cost model.
//
// The two CPU-phase scheduling disciplines (barriered tile-diagonal sweep
// vs dependency-counter dataflow, cpu/dataflow_wavefront.hpp) produce
// bit-identical grids, so the choice between them is purely a performance
// question — and the cost models answer it deterministically per input:
// sum the phase-1 + phase-3 region costs of a tuning under each scheduler
// and take the argmin. For the three shipped profiles the calibration
// (dataflow_dep_ns < tile_sched_ns, barrier_ns > 0) makes dataflow the
// predicted winner on every nonempty region; the selection hook earns its
// keep on recalibrated or user-supplied CpuModels — machines where
// dependency bookkeeping and steal traffic genuinely cost more than a
// pool barrier (high-core-count NUMA boxes, dataflow_dep_ns measured
// above tile_sched_ns) flip the answer per region shape. The "cpu-auto"
// backend applies this choice at run/estimate time, the same way the
// paper's autotuner picks band/halo/tile.
#pragma once

#include "core/params.hpp"
#include "cpu/dataflow_wavefront.hpp"
#include "sim/system_profile.hpp"

namespace wavetune::autotune {

/// Total modelled CPU-phase time (phases 1 and 3 of the three-phase
/// schedule; the whole grid when the tuning uses no GPU) for `in` under
/// `params` with the given scheduler. `params` may be raw: it is
/// normalized for in.dim first.
double cpu_phase_cost_ns(cpu::Scheduler scheduler, const core::InputParams& in,
                         const core::TunableParams& params, const sim::CpuModel& cpu);

/// The scheduler the cost model predicts faster for this input + tuning.
/// Ties go to the barriered scheduler (the paper's baseline discipline).
cpu::Scheduler choose_cpu_scheduler(const core::InputParams& in,
                                    const core::TunableParams& params,
                                    const sim::CpuModel& cpu);

/// Backend-registry name of the predicted-faster pure-CPU backend for
/// this input + tuning: "cpu-dataflow" or "cpu-tiled". Convenience for
/// call sites that select per-plan through api::Engine::compile.
const char* preferred_cpu_backend(const core::InputParams& in,
                                  const core::TunableParams& params,
                                  const sim::SystemProfile& profile);

}  // namespace wavetune::autotune
