// Per-input CPU-scheduler selection through the analytic cost model.
//
// The two CPU-phase scheduling disciplines (barriered tile-diagonal sweep
// vs dependency-counter dataflow, cpu/dataflow_wavefront.hpp) produce
// bit-identical grids, so the choice between them is purely a performance
// question — and the cost models answer it deterministically per input by
// walking the same core::PhaseProgram the executor interprets: cost each
// CPU phase's region under each scheduler and take the argmin. For the
// three shipped profiles the calibration (dataflow_dep_ns < tile_sched_ns,
// barrier_ns > 0) makes dataflow the predicted winner on every nonempty
// region; the selection hook earns its keep on recalibrated or
// user-supplied CpuModels — machines where dependency bookkeeping and
// steal traffic genuinely cost more than a pool barrier (high-core-count
// NUMA boxes, dataflow_dep_ns measured above tile_sched_ns) flip the
// answer per region shape. The "cpu-auto" backend applies the per-phase
// refinement (tune_cpu_schedulers) at PLAN time, so the one program its
// plan carries is what both run and estimate interpret.
#pragma once

#include "core/params.hpp"
#include "core/phase_program.hpp"
#include "cpu/dataflow_wavefront.hpp"
#include "sim/system_profile.hpp"

namespace wavetune::autotune {

/// Total modelled CPU-phase time of the program `plan_phases(in, params,
/// scheduler)` would produce (the whole grid when the tuning uses no
/// GPU) — i.e. the sum of the CPU phases of the same program walk the
/// executor charges. `params` may be raw: it is normalized for in.dim.
double cpu_phase_cost_ns(cpu::Scheduler scheduler, const core::InputParams& in,
                         const core::TunableParams& params, const sim::CpuModel& cpu);

/// Modelled time of ONE CPU phase of a program on `cpu`.
double phase_cost_ns(const core::PhaseDesc& phase, std::size_t dim, double tsize_units,
                     std::size_t elem_bytes, const sim::CpuModel& cpu);

/// The single scheduler the cost model predicts faster across all CPU
/// phases of this input + tuning. Ties go to the barriered scheduler (the
/// paper's baseline discipline).
cpu::Scheduler choose_cpu_scheduler(const core::InputParams& in,
                                    const core::TunableParams& params,
                                    const sim::CpuModel& cpu);

/// Per-PHASE refinement: re-decides barrier-vs-dataflow for every CPU
/// phase of `program` independently (a pre-band sliver and a post-band
/// bulk phase can want different disciplines). GPU phases pass through
/// untouched; ties go to barrier. Returns the refined program.
core::PhaseProgram tune_cpu_schedulers(core::PhaseProgram program, const core::InputParams& in,
                                       const sim::CpuModel& cpu);

/// Backend-registry name of the predicted-faster pure-CPU backend for
/// this input + tuning: "cpu-dataflow" or "cpu-tiled". Convenience for
/// call sites that select per-plan through api::Engine::compile.
const char* preferred_cpu_backend(const core::InputParams& in,
                                  const core::TunableParams& params,
                                  const sim::SystemProfile& profile);

}  // namespace wavetune::autotune
