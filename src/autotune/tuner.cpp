#include "autotune/tuner.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace wavetune::autotune {

Autotuner Autotuner::train(const std::vector<InstanceResult>& search_results,
                           const sim::SystemProfile& profile, const TunerConfig& config) {
  if (search_results.empty()) throw std::invalid_argument("Autotuner::train: no search data");
  const TrainingTables tables = build_training(search_results, config.training);
  if (tables.cpu_tile.empty()) {
    throw std::invalid_argument("Autotuner::train: training tables are empty");
  }

  Autotuner tuner;
  tuner.system_name_ = profile.name;
  tuner.system_gpus_ = profile.gpu_count();
  if (!tables.parallel_gate.empty()) {
    tuner.gate_ = ml::LinearSvm::fit(tables.parallel_gate, config.svm);
    tuner.gate_trained_ = true;
  }
  tuner.gpu_use_ = ml::RepTree::fit(tables.gpu_use, config.rep);
  tuner.cpu_tile_ = ml::M5Tree::fit(tables.cpu_tile, config.m5);
  tuner.band_ = ml::M5Tree::fit(tables.band, config.m5);
  tuner.halo_ = ml::M5Tree::fit(tables.halo, config.m5);
  return tuner;
}

Prediction Autotuner::predict(const core::InputParams& in) const {
  in.validate();
  const std::vector<double> base{static_cast<double>(in.dim), in.tsize,
                                 static_cast<double>(in.dsize)};

  Prediction pred;
  pred.parallel = !gate_trained_ || gate_.predict(base) > 0;

  // gpu-use: the binary REP-tree decision (>= 0.5 means use a GPU).
  const double gpu_use_raw = gpu_use_.predict(base);
  const bool use_gpu = gpu_use_raw >= 0.5 && system_gpus_ >= 1;

  // cpu-tile from the inputs only (paper §4.1.5: removing the other
  // tunables from its regression improved accuracy).
  const double ct_raw = cpu_tile_.predict(base);
  pred.params.cpu_tile = static_cast<int>(std::llround(std::clamp(ct_raw, 1.0, 64.0)));

  if (!use_gpu) {
    pred.params.band = -1;
    pred.params.halo = -1;
    pred.params.gpu_tile = 1;
    pred.params = pred.params.normalized(in.dim);
    return pred;
  }

  // band from the inputs plus the gpu-use decision.
  std::vector<double> band_x = base;
  band_x.push_back(1.0);
  const double band_raw = band_.predict(band_x);
  pred.params.band =
      std::clamp<long long>(static_cast<long long>(std::llround(band_raw)), 0,
                            static_cast<long long>(in.dim) - 1);

  // halo from the inputs plus the predicted cpu-tile and band.
  std::vector<double> halo_x = base;
  halo_x.push_back(static_cast<double>(pred.params.cpu_tile));
  halo_x.push_back(static_cast<double>(pred.params.band));
  const double halo_raw = halo_.predict(halo_x);
  if (system_gpus_ >= 2 && halo_raw >= -0.5) {
    pred.params.halo = std::clamp<long long>(
        static_cast<long long>(std::llround(std::max(0.0, halo_raw))), 0,
        core::TunableParams::max_halo(in.dim, pred.params.band));
  } else {
    pred.params.halo = -1;  // single GPU
  }
  pred.params.gpu_tile = 1;  // the learned gpu-tile decision is binary
  pred.params = pred.params.normalized(in.dim);
  return pred;
}

std::string Autotuner::describe() const {
  std::ostringstream out;
  out << "Autotuner for system '" << system_name_ << "' (" << system_gpus_ << " GPU(s))\n\n";
  out << "== parallel gate (linear SVM over dim, tsize, dsize) ==\n";
  if (gate_trained_) {
    out << "  margin = " << gate_.bias();
    const std::vector<std::string> names{"dim", "tsize", "dsize"};
    for (std::size_t c = 0; c < gate_.weights().size(); ++c) {
      out << " + " << gate_.weights()[c] << "*" << names[c];
    }
    out << "\n\n";
  } else {
    out << "  (not trained; parallel assumed)\n\n";
  }
  out << "== gpu-use (REP tree) ==\n"
      << gpu_use_.describe({"dim", "tsize", "dsize"}) << '\n';
  out << "== cpu-tile (M5 pruned model tree) ==\n"
      << cpu_tile_.describe({"dim", "tsize", "dsize"}) << '\n';
  out << "== band (M5 pruned model tree) ==\n"
      << band_.describe({"dim", "tsize", "dsize", "gpu_tile"}) << '\n';
  out << "== halo (M5 pruned model tree) ==\n"
      << halo_.describe({"dim", "tsize", "dsize", "cpu_tile", "band"}) << '\n';
  return out.str();
}

util::Json Autotuner::to_json() const {
  util::Json j = util::Json::object();
  j["system"] = util::Json(system_name_);
  j["system_gpus"] = util::Json(system_gpus_);
  j["gate_trained"] = util::Json(gate_trained_);
  if (gate_trained_) j["gate"] = gate_.to_json();
  j["gpu_use"] = gpu_use_.to_json();
  j["cpu_tile"] = cpu_tile_.to_json();
  j["band"] = band_.to_json();
  j["halo"] = halo_.to_json();
  return j;
}

Autotuner Autotuner::from_json(const util::Json& j) {
  Autotuner t;
  t.system_name_ = j.at("system").as_string();
  t.system_gpus_ = static_cast<int>(j.at("system_gpus").as_int());
  t.gate_trained_ = j.at("gate_trained").as_bool();
  if (t.gate_trained_) t.gate_ = ml::LinearSvm::from_json(j.at("gate"));
  t.gpu_use_ = ml::RepTree::from_json(j.at("gpu_use"));
  t.cpu_tile_ = ml::M5Tree::from_json(j.at("cpu_tile"));
  t.band_ = ml::M5Tree::from_json(j.at("band"));
  t.halo_ = ml::M5Tree::from_json(j.at("halo"));
  return t;
}

void Autotuner::save(const std::string& path) const { to_json().save_file(path); }

Autotuner Autotuner::load(const std::string& path) {
  return from_json(util::Json::load_file(path));
}

}  // namespace wavetune::autotune
