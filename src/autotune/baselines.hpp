// The three simple execution schemes the paper compares against
// (Fig. 6): serial CPU, all-cores CPU with no GPU phase, and entirely-GPU.
#pragma once

#include "core/executor.hpp"
#include "core/params.hpp"
#include "sim/system_profile.hpp"

namespace wavetune::autotune {

struct BaselineTimes {
  double serial_ns = 0.0;
  double cpu_parallel_ns = 0.0;  ///< best cpu-tile, band = -1
  double gpu_only_ns = 0.0;      ///< band = dim-1 (whole grid), best gpu config
  core::TunableParams cpu_parallel_params;
  core::TunableParams gpu_only_params;
};

/// Evaluates the three simple schemes for one instance via the cost model,
/// choosing each scheme's own best secondary knobs (cpu-tile for the CPU
/// scheme; halo/gpu-tile for the GPU scheme).
BaselineTimes compute_baselines(const core::HybridExecutor& executor,
                                const core::InputParams& instance,
                                const std::vector<int>& cpu_tiles,
                                const std::vector<int>& gpu_tiles,
                                const std::vector<double>& halo_fractions);

}  // namespace wavetune::autotune
