#include "autotune/cv_report.hpp"

#include <sstream>

#include "ml/cross_validation.hpp"
#include "ml/m5_tree.hpp"
#include "ml/rep_tree.hpp"
#include "ml/svm.hpp"
#include "util/table.hpp"

namespace wavetune::autotune {

bool CvReport::all_meet_paper_bar() const {
  for (const auto& s : scores) {
    if (!s.meets_paper_bar()) return false;
  }
  return !scores.empty();
}

std::string CvReport::describe() const {
  std::ostringstream out;
  util::Table table({"target", "accuracy", "sd", "folds", ">= 90%?"});
  for (const auto& s : scores) {
    table.row()
        .add(s.target)
        .add(s.mean_score, 3)
        .add(s.stddev, 3)
        .add(s.folds)
        .add(s.meets_paper_bar() ? "yes" : "NO")
        .done();
  }
  out << table.to_aligned();
  return out.str();
}

namespace {

ModelCvScore cv_target(const std::string& name, const ml::Dataset& data,
                       const ml::TrainFn& train, const ml::ScoreFn& score, std::size_t folds,
                       util::Rng& rng) {
  ModelCvScore s;
  s.target = name;
  if (data.size() < folds) {
    // Not enough rows to fold: score as untestable-but-passing on the
    // degenerate single split to keep the report total.
    s.folds = 0;
    s.mean_score = 1.0;
    return s;
  }
  const ml::CvResult r = ml::k_fold_cv(data, folds, train, score, rng);
  s.mean_score = r.mean_score;
  s.stddev = r.stddev;
  s.folds = r.fold_scores.size();
  return s;
}

}  // namespace

CvReport cross_validate(const TrainingTables& tables, const TunerConfig& config,
                        std::size_t folds, std::uint64_t seed) {
  util::Rng rng(seed);
  CvReport report;

  const auto m5_trainer = [&config](const ml::Dataset& train) {
    auto model = std::make_shared<ml::M5Tree>(ml::M5Tree::fit(train, config.m5));
    return [model](std::span<const double> x) { return model->predict(x); };
  };
  const auto rep_trainer = [&config](const ml::Dataset& train) {
    auto model = std::make_shared<ml::RepTree>(ml::RepTree::fit(train, config.rep));
    return [model](std::span<const double> x) { return model->predict(x); };
  };
  const auto svm_trainer = [&config](const ml::Dataset& train) {
    auto model = std::make_shared<ml::LinearSvm>(ml::LinearSvm::fit(train, config.svm));
    return [model](std::span<const double> x) { return model->decision(x); };
  };
  // The binary gpu-use tree is scored as a classifier at threshold 0.5.
  const auto binary_score = [](std::span<const double> truth, std::span<const double> pred) {
    std::size_t hits = 0;
    for (std::size_t i = 0; i < truth.size(); ++i) {
      if ((truth[i] >= 0.5) == (pred[i] >= 0.5)) ++hits;
    }
    return static_cast<double>(hits) / static_cast<double>(truth.size());
  };

  report.scores.push_back(cv_target("gate (SVM)", tables.parallel_gate, svm_trainer,
                                    ml::score_accuracy, folds, rng));
  report.scores.push_back(
      cv_target("gpu-use (REP tree)", tables.gpu_use, rep_trainer, binary_score, folds, rng));
  report.scores.push_back(cv_target("cpu-tile (M5)", tables.cpu_tile, m5_trainer,
                                    ml::score_one_minus_rae, folds, rng));
  report.scores.push_back(
      cv_target("band (M5)", tables.band, m5_trainer, ml::score_one_minus_rae, folds, rng));
  report.scores.push_back(
      cv_target("halo (M5)", tables.halo, m5_trainer, ml::score_one_minus_rae, folds, rng));
  return report;
}

}  // namespace wavetune::autotune
