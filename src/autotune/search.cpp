#include "autotune/search.hpp"

#include <algorithm>
#include <cmath>
#include <set>

#include "core/phase_program.hpp"
#include "util/logging.hpp"
#include "util/stats.hpp"

namespace wavetune::autotune {

namespace {

std::optional<SearchRecord> best_of(const std::vector<SearchRecord>& records,
                                    bool (*filter)(const SearchRecord&)) {
  std::optional<SearchRecord> best;
  for (const auto& r : records) {
    if (r.censored || !filter(r)) continue;
    if (!best || r.rtime_ns < best->rtime_ns) best = r;
  }
  return best;
}

}  // namespace

std::optional<SearchRecord> InstanceResult::best() const {
  return best_of(records, [](const SearchRecord&) { return true; });
}

std::optional<SearchRecord> InstanceResult::best_cpu_only() const {
  return best_of(records, [](const SearchRecord& r) { return !r.params.uses_gpu(); });
}

std::optional<SearchRecord> InstanceResult::best_gpu() const {
  return best_of(records, [](const SearchRecord& r) { return r.params.uses_gpu(); });
}

std::vector<SearchRecord> InstanceResult::top_k(std::size_t k) const {
  std::vector<SearchRecord> eligible;
  for (const auto& r : records) {
    if (!r.censored) eligible.push_back(r);
  }
  std::sort(eligible.begin(), eligible.end(),
            [](const SearchRecord& a, const SearchRecord& b) { return a.rtime_ns < b.rtime_ns; });
  if (eligible.size() > k) eligible.resize(k);
  return eligible;
}

double InstanceResult::mean_rtime_ns() const {
  std::vector<double> xs;
  for (const auto& r : records) {
    if (!r.censored) xs.push_back(r.rtime_ns);
  }
  return util::mean(xs);
}

double InstanceResult::stddev_rtime_ns() const {
  std::vector<double> xs;
  for (const auto& r : records) {
    if (!r.censored) xs.push_back(r.rtime_ns);
  }
  return util::stddev(xs);
}

ExhaustiveSearch::ExhaustiveSearch(sim::SystemProfile profile, ParamSpace space,
                                   double threshold_seconds)
    : profile_(std::move(profile)), space_(std::move(space)), threshold_s_(threshold_seconds),
      executor_(profile_, /*pool_workers=*/1) {}

InstanceResult ExhaustiveSearch::search_instance(const core::InputParams& instance) const {
  InstanceResult result;
  result.instance = instance;
  result.serial_ns = executor_.estimate_serial(instance);

  const double threshold_ns = threshold_s_ * 1e9;
  const auto configs = space_.configs_for(instance.dim, profile_.gpu_count());
  result.records.reserve(configs.size());
  for (const auto& params : configs) {
    // Every configuration is evaluated as a phase program — the same IR
    // the executor interprets — so the search can explore schedule
    // STRUCTURE (the band-split axis) alongside the paper's tile sizes.
    const core::PhaseProgram base = core::plan_phases(instance, params);
    // Splits clamp to the band width, so distinct k values can collapse to
    // one shape (k=4 and k=8 on a 3-diagonal band are both 3 sub-bands);
    // evaluate each resulting shape once or top_k would double-weight it.
    std::set<std::size_t> seen_shapes{base.phases.size()};
    for (int split : space_.splits_for(params)) {
      const core::PhaseProgram program =
          split > 1 ? core::split_gpu_band(base, static_cast<std::size_t>(split)) : base;
      if (split > 1 && !seen_shapes.insert(program.phases.size()).second) continue;
      // The streaming-strip axis is orthogonal to the split axis: each
      // shape is additionally priced as an out-of-core strip schedule for
      // every requested strip size (0 keeps the whole-grid program).
      for (std::size_t strip : space_.strips_for(instance.dim)) {
        const core::PhaseProgram streamed =
            strip > 0 ? core::apply_strips(program, strip) : program;
        SearchRecord rec;
        rec.params = params;
        rec.band_split = split;
        rec.strip_rows = strip;
        rec.rtime_ns = executor_.estimate(instance, streamed).rtime_ns;
        rec.censored = rec.rtime_ns > threshold_ns;
        if (rec.censored) ++result.censored_count;
        result.records.push_back(rec);
      }
    }
  }
  return result;
}

std::vector<InstanceResult> ExhaustiveSearch::sweep() const {
  std::vector<InstanceResult> out;
  const auto instances = space_.instances();
  out.reserve(instances.size());
  for (const auto& inst : instances) {
    out.push_back(search_instance(inst));
    util::log_debug("search: ", profile_.name, " ", inst.describe(), " done (",
                    out.back().records.size(), " configs, ", out.back().censored_count,
                    " censored)");
  }
  return out;
}

}  // namespace wavetune::autotune
