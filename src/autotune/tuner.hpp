// The machine-learned autotuner (paper §3.1.2 / §4.1.5 / §4.2).
//
// Prediction pipeline, mirroring the paper's learned-model structure:
//   1. a binary linear SVM decides whether to exploit parallelism at all;
//   2. a REP tree predicts the (binary) gpu-use decision — the paper's
//      observation that "gpu-tile values corresponded to either 1 or 0";
//   3. an M5 model tree predicts cpu-tile from the input parameters only;
//   4. an M5 model tree predicts band from the inputs plus gpu-use;
//   5. an M5 model tree predicts halo from the inputs plus the predicted
//      cpu-tile and band (Fig. 9: "halo depends on band and cpu-tile").
//
// Trained "in the factory", once per system profile.
#pragma once

#include <memory>
#include <string>

#include "autotune/search.hpp"
#include "autotune/training.hpp"
#include "ml/m5_tree.hpp"
#include "ml/rep_tree.hpp"
#include "ml/svm.hpp"
#include "sim/system_profile.hpp"

namespace wavetune::autotune {

struct TunerConfig {
  TrainingOptions training;
  ml::M5Config m5;
  ml::RepTreeConfig rep;
  ml::SvmConfig svm;

  /// Defaults reproduce the paper's model-selection outcome ("we explored
  /// different configurations of the learning model to obtain test
  /// results that were at least 90% accurate"): small leaves and no M5
  /// smoothing score best under cross-validation on this space.
  TunerConfig() {
    m5.min_leaf = 2;
    m5.smooth = false;
    // The binary gpu-use labels are one noise-free point per instance
    // (deterministic cost model), so the REP tree grows fully: fitting
    // them exactly is fitting the true offload boundary at grid
    // resolution.
    rep.min_leaf = 1;
    rep.prune = false;
  }
};

/// One prediction: whether to parallelise, and with what tuning.
struct Prediction {
  bool parallel = true;
  core::TunableParams params;
};

class Autotuner {
public:
  Autotuner() = default;

  /// Trains all five models from exhaustive-search results of the
  /// synthetic application on `profile`.
  static Autotuner train(const std::vector<InstanceResult>& search_results,
                         const sim::SystemProfile& profile, const TunerConfig& config = {});

  /// Predicts tuned parameters for an unseen instance. Predictions are
  /// normalized for the instance's dim and clamped to the system's GPU
  /// count.
  Prediction predict(const core::InputParams& in) const;

  /// System this tuner was trained for.
  const std::string& system_name() const { return system_name_; }
  int system_gpus() const { return system_gpus_; }

  /// The Fig. 9 artefact: the pruned M5 model tree predicting halo.
  const ml::M5Tree& halo_model() const { return halo_; }
  const ml::M5Tree& band_model() const { return band_; }
  const ml::M5Tree& cpu_tile_model() const { return cpu_tile_; }
  const ml::RepTree& gpu_use_model() const { return gpu_use_; }
  const ml::LinearSvm& gate_model() const { return gate_; }

  /// Human-readable dump of all models.
  std::string describe() const;

  util::Json to_json() const;
  static Autotuner from_json(const util::Json& j);
  void save(const std::string& path) const;
  static Autotuner load(const std::string& path);

private:
  std::string system_name_;
  int system_gpus_ = 0;
  bool gate_trained_ = false;
  ml::LinearSvm gate_;
  ml::RepTree gpu_use_;
  ml::M5Tree cpu_tile_;
  ml::M5Tree band_;
  ml::M5Tree halo_;
};

}  // namespace wavetune::autotune
