// Training-set generation (paper §3.1.2):
// "firstly a subset of the problem instances (i.e., by dim, tsize and
// dsize) are selected by regular sampling; then the best five performance
// points for these instances (by tunable parameter values) are added to
// the training set."
//
// One table per predicted target, with the dependent-feature chaining the
// paper's learned model exhibits (§4.1.5):
//   parallel gate : (dim, tsize, dsize)              -> +-1
//   gpu-use       : (dim, tsize, dsize)              -> 0/1 (REP tree target)
//   cpu-tile      : (dim, tsize, dsize)              -> cpu-tile
//   band          : (dim, tsize, dsize, gpu-use)     -> band
//   halo          : (dim, tsize, dsize, cpu-tile, band) -> halo
#pragma once

#include <vector>

#include "autotune/search.hpp"
#include "ml/dataset.hpp"

namespace wavetune::autotune {

struct TrainingOptions {
  std::size_t instance_stride = 2;  ///< regular sampling: keep every n-th instance
  std::size_t instance_offset = 0;  ///< sampling phase (offset < stride)
  std::size_t best_k = 5;           ///< best performance points per instance
};

struct TrainingTables {
  ml::Dataset parallel_gate{std::vector<std::string>{"dim", "tsize", "dsize"}};
  ml::Dataset gpu_use{std::vector<std::string>{"dim", "tsize", "dsize"}};
  ml::Dataset cpu_tile{std::vector<std::string>{"dim", "tsize", "dsize"}};
  ml::Dataset band{std::vector<std::string>{"dim", "tsize", "dsize", "gpu_tile"}};
  ml::Dataset halo{std::vector<std::string>{"dim", "tsize", "dsize", "cpu_tile", "band"}};

  /// Instances *not* selected for training (the cross-validation holdout
  /// of paper §3.1.2 — "instances of synthetic application which were
  /// omitted from the training set").
  std::vector<InstanceResult> holdout;
};

/// Builds the per-target training tables from exhaustive-search results.
TrainingTables build_training(const std::vector<InstanceResult>& results,
                              const TrainingOptions& options = {});

}  // namespace wavetune::autotune
