// Cross-validation reporting for the trained models — the paper's §3.1.2
// acceptance criterion: "We explored different configurations of the
// learning model to obtain test results that were at least 90% accurate."
//
// Accuracy readings: classification accuracy for the SVM gate and the
// binary gpu-use tree; 1 - relative-absolute-error (Weka's RAE) for the
// regression targets.
#pragma once

#include <string>
#include <vector>

#include "autotune/training.hpp"
#include "autotune/tuner.hpp"

namespace wavetune::autotune {

struct ModelCvScore {
  std::string target;     ///< "gate", "gpu-use", "cpu-tile", "band", "halo"
  double mean_score = 0;  ///< across folds, in [~0, 1]
  double stddev = 0;
  std::size_t folds = 0;
  bool meets_paper_bar() const { return mean_score >= 0.9; }
};

struct CvReport {
  std::vector<ModelCvScore> scores;
  /// True when every target clears the paper's 90% criterion.
  bool all_meet_paper_bar() const;
  std::string describe() const;
};

/// k-fold cross-validates all five model targets on the given training
/// tables, re-fitting a fresh model per fold with `config`'s settings.
CvReport cross_validate(const TrainingTables& tables, const TunerConfig& config = {},
                        std::size_t folds = 5, std::uint64_t seed = 41);

}  // namespace wavetune::autotune
