#include "autotune/baselines.hpp"

#include <cmath>
#include <limits>

namespace wavetune::autotune {

BaselineTimes compute_baselines(const core::HybridExecutor& executor,
                                const core::InputParams& instance,
                                const std::vector<int>& cpu_tiles,
                                const std::vector<int>& gpu_tiles,
                                const std::vector<double>& halo_fractions) {
  BaselineTimes out;
  out.serial_ns = executor.estimate_serial(instance);

  // All-CPU: pick the best cpu-tile.
  out.cpu_parallel_ns = std::numeric_limits<double>::infinity();
  for (int ct : cpu_tiles) {
    const core::TunableParams p{ct, -1, -1, 1};
    const double t = executor.estimate(instance, p).rtime_ns;
    if (t < out.cpu_parallel_ns) {
      out.cpu_parallel_ns = t;
      out.cpu_parallel_params = p.normalized(instance.dim);
    }
  }

  // All-GPU: band covers the whole grid; phases 1 and 3 are null, so
  // cpu-tile is irrelevant. Sweep gpu-tile (single GPU) and halo (dual).
  out.gpu_only_ns = std::numeric_limits<double>::infinity();
  const auto full_band = static_cast<long long>(instance.dim) - 1;
  if (executor.profile().gpu_count() >= 1) {
    for (int gt : gpu_tiles) {
      const core::TunableParams p{1, full_band, -1, gt};
      const double t = executor.estimate(instance, p).rtime_ns;
      if (t < out.gpu_only_ns) {
        out.gpu_only_ns = t;
        out.gpu_only_params = p.normalized(instance.dim);
      }
    }
  }
  if (executor.profile().gpu_count() >= 2) {
    const long long hmax = core::TunableParams::max_halo(instance.dim, full_band);
    for (double f : halo_fractions) {
      const auto h = static_cast<long long>(std::llround(f * static_cast<double>(hmax)));
      const core::TunableParams p{1, full_band, h, 1};
      const double t = executor.estimate(instance, p).rtime_ns;
      if (t < out.gpu_only_ns) {
        out.gpu_only_ns = t;
        out.gpu_only_params = p.normalized(instance.dim);
      }
    }
  }
  return out;
}

}  // namespace wavetune::autotune
