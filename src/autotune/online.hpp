// Online (runtime) tuning — the paper's §6 future work: "we plan to
// upgrade our offline auto-tuner to tune at runtime".
//
// Two refiners live here:
//
//   * refine_online — the original parameter-space hill climb: the
//     offline model's prediction seeds a local search over the
//     tunable-parameter neighbourhood, evaluated through the cost model.
//
//   * refine_program — the PROFILE-DRIVEN program-space hill climb: it
//     mutates the compiled core::PhaseProgram itself (split / merge /
//     re-device a phase, per-phase cpu_tile / gpu_tile and scheduler
//     moves instead of one global tuning), scoring every candidate by the
//     interpreter's estimate with each phase's simulated time multiplied
//     by the measured-vs-modelled residual scale of its device class
//     (PhaseCostScales, produced by profile::device_scales from live
//     ProfileStore data). With neutral scales it degenerates to a pure
//     model-driven program search; with measured scales it is the
//     "replan" leg of the measure -> attribute -> replan loop.
//
// Both refiners are budgeted: they stop after `max_evaluations` cost
// queries, so the tuning overhead is bounded and amortisable over
// repeated runs.
#pragma once

#include <cstddef>

#include "core/executor.hpp"
#include "core/params.hpp"
#include "core/phase_program.hpp"

namespace wavetune::autotune {

struct OnlineTunerOptions {
  std::size_t max_evaluations = 64;  ///< probe budget
  /// Multiplicative step ladder for band/halo moves; cpu-tile and
  /// gpu-count move by +-1 steps.
  double coarse_step = 0.25;
  double fine_step = 0.05;
};

struct OnlineTuneResult {
  core::TunableParams params;       ///< refined configuration
  double rtime_ns = 0.0;            ///< cost-model runtime of `params`
  double seed_rtime_ns = 0.0;       ///< runtime of the seed prediction
  std::size_t evaluations = 0;      ///< probes actually spent
  double improvement() const {
    return seed_rtime_ns > 0.0 ? seed_rtime_ns / rtime_ns : 1.0;
  }
};

/// Refines `seed` for `instance` by greedy neighbourhood descent:
/// each round proposes moves on every tunable (band up/down, halo
/// up/down/off, cpu-tile ladder, gpu-count up/down where the system
/// allows) and takes the best improving move until the budget is
/// exhausted or no move improves.
OnlineTuneResult refine_online(const core::HybridExecutor& executor,
                               const core::InputParams& instance,
                               const core::TunableParams& seed,
                               const OnlineTunerOptions& options = {});

// --- profile-driven program refinement ------------------------------------

/// Measured-vs-modelled cost multipliers per device class: how much slower
/// (> 1) or faster (< 1) phases of that class run in reality than the
/// a-priori model prices them. Neutral {1, 1} reproduces the raw model.
struct PhaseCostScales {
  double cpu = 1.0;
  double gpu = 1.0;  ///< applies to kGpuSingle and kGpuMulti phases alike

  double for_device(core::PhaseDevice d) const {
    return d == core::PhaseDevice::kCpu ? cpu : gpu;
  }
};

struct ProgramTuneOptions {
  std::size_t max_evaluations = 96;  ///< probe budget (cost queries)
};

struct ProgramTuneResult {
  core::PhaseProgram program;    ///< refined schedule (validated)
  double cost_ns = 0.0;          ///< scaled cost of `program`
  double seed_cost_ns = 0.0;     ///< scaled cost of the seed program
  std::size_t evaluations = 0;   ///< probes actually spent
  double improvement() const {
    return seed_cost_ns > 0.0 ? seed_cost_ns / cost_ns : 1.0;
  }
};

/// The scoring function of refine_program, exposed for tests and
/// reporting: the interpreter's estimate of `program`, with every phase's
/// simulated ns multiplied by its device-class residual scale.
double scaled_program_cost_ns(const core::HybridExecutor& executor,
                              const core::InputParams& instance,
                              const core::PhaseProgram& program,
                              const PhaseCostScales& scales);

/// Refines `seed` by greedy descent over PROGRAM mutations: per-phase
/// cpu_tile ladder and scheduler moves, per-phase gpu_tile ladder moves,
/// splitting a phase at its diagonal midpoint, merging adjacent
/// same-device phases, and re-deviceing a phase (CPU <-> single GPU,
/// multi-GPU -> CPU, respecting the profile's device count). Every
/// candidate is validated before scoring; the best improving move is taken
/// until the budget is exhausted or no move improves. The returned program
/// is always valid and never worse (under the scaled cost) than the seed.
ProgramTuneResult refine_program(const core::HybridExecutor& executor,
                                 const core::InputParams& instance,
                                 const core::PhaseProgram& seed,
                                 const PhaseCostScales& scales = {},
                                 const ProgramTuneOptions& options = {});

}  // namespace wavetune::autotune
