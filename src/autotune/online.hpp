// Online (runtime) tuning — the paper's §6 future work: "we plan to
// upgrade our offline auto-tuner to tune at runtime".
//
// The offline model's prediction seeds a local hill-climbing search over
// the tunable-parameter neighbourhood, evaluated through the cost model
// (in a deployment this would be short timed probe runs). The refiner is
// budgeted: it stops after `max_evaluations` cost-model queries, so the
// tuning overhead is bounded and amortisable over repeated runs.
#pragma once

#include <cstddef>

#include "core/executor.hpp"
#include "core/params.hpp"

namespace wavetune::autotune {

struct OnlineTunerOptions {
  std::size_t max_evaluations = 64;  ///< probe budget
  /// Multiplicative step ladder for band/halo moves; cpu-tile and
  /// gpu-count move by +-1 steps.
  double coarse_step = 0.25;
  double fine_step = 0.05;
};

struct OnlineTuneResult {
  core::TunableParams params;       ///< refined configuration
  double rtime_ns = 0.0;            ///< cost-model runtime of `params`
  double seed_rtime_ns = 0.0;       ///< runtime of the seed prediction
  std::size_t evaluations = 0;      ///< probes actually spent
  double improvement() const {
    return seed_rtime_ns > 0.0 ? seed_rtime_ns / rtime_ns : 1.0;
  }
};

/// Refines `seed` for `instance` by greedy neighbourhood descent:
/// each round proposes moves on every tunable (band up/down, halo
/// up/down/off, cpu-tile ladder, gpu-count up/down where the system
/// allows) and takes the best improving move until the budget is
/// exhausted or no move improves.
OnlineTuneResult refine_online(const core::HybridExecutor& executor,
                               const core::InputParams& instance,
                               const core::TunableParams& seed,
                               const OnlineTunerOptions& options = {});

}  // namespace wavetune::autotune
