// The exhaustive-search parameter space — paper Table 3.
//
//   dim       500 to 3100          (problem size)
//   tsize     10 to 12000          (kernel granularity)
//   dsize     1, 3, 5              (data granularity)
//   cpu-tile  1, 2, 4, 8, 10
//   band      -1 to 2*dim-1        (here: -1 plus irregular fractions of dim-1)
//   gpu-count 0, 1, 2              (encoded in band/halo, paper §3.1.1)
//   halo      -1 to 0.5*first-offloaded-diagonal-length
//   gpu-tile  1, 4, 8, 11, 16, 21, 25
//
// "Values of parameters like dim, tsize, band, halo are spaced irregularly
// to avoid any cyclic pattern" — the defaults below follow that.
#pragma once

#include <vector>

#include "core/params.hpp"

namespace wavetune::autotune {

struct ParamSpace {
  std::vector<std::size_t> dims;
  std::vector<double> tsizes;
  std::vector<int> dsizes;
  std::vector<int> cpu_tiles;
  /// Band values are generated per dim as round(f * (dim-1)) for each
  /// fraction f, always including -1 (no GPU).
  std::vector<double> band_fractions;
  /// Halo values per (dim, band): -1 (single GPU) plus
  /// round(f * max_halo) for each fraction.
  std::vector<double> halo_fractions;
  std::vector<int> gpu_tiles;
  /// Phase-STRUCTURE axis (beyond the paper's Table 3): split the GPU
  /// band of a configuration into K contiguous sub-band phases
  /// (core::split_gpu_band), trading extra frontier transfers for shorter
  /// device residency. {1} — the default everywhere, and what the paper
  /// searched — keeps the classic single-band program; values > 1 make
  /// the exhaustive search explore schedule shape, not just tile sizes.
  std::vector<int> band_splits = {1};
  /// Streaming-strip axis (core::apply_strips): execute each phase as row
  /// strips of this many rows over a fixed double-buffered pool, 0 = no
  /// streaming (whole-grid resident — the default everywhere, and what
  /// the paper searched). Values > 0 let the exhaustive search price the
  /// out-of-core schedule's transfer/compute overlap against the classic
  /// whole-grid program.
  std::vector<std::size_t> strip_rows = {0};

  /// The paper's Table 3 ranges with irregular spacing.
  static ParamSpace paper_default();

  /// A small space for unit tests and smoke runs (same structure).
  static ParamSpace reduced();

  /// All problem instances (the cross product of dim/tsize/dsize).
  std::vector<core::InputParams> instances() const;

  /// Concrete band values for one dim (deduplicated, sorted, -1 first).
  std::vector<long long> bands_for(std::size_t dim) const;

  /// Concrete halo values for one (dim, band) (deduplicated; -1 first).
  /// `max_gpus < 2` drops every halo >= 0 (single-GPU systems, like the
  /// paper's i3-540, have no halo axis).
  std::vector<long long> halos_for(std::size_t dim, long long band, int max_gpus) const;

  /// Every distinct normalized tunable configuration for a dim on a system
  /// with `max_gpus` GPUs.
  std::vector<core::TunableParams> configs_for(std::size_t dim, int max_gpus) const;

  /// The band-split factors applicable to one configuration: always {1}
  /// for CPU-only tunings (no band to split), the deduplicated sorted
  /// splits otherwise.
  std::vector<int> splits_for(const core::TunableParams& params) const;

  /// The strip sizes applicable to one dim: 0 (whole-grid) first, then
  /// the deduplicated sorted positive values clamped to dim.
  std::vector<std::size_t> strips_for(std::size_t dim) const;
};

}  // namespace wavetune::autotune
