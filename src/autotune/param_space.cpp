#include "autotune/param_space.hpp"

#include <algorithm>
#include <cmath>
#include <set>

namespace wavetune::autotune {

ParamSpace ParamSpace::paper_default() {
  ParamSpace s;
  s.dims = {500, 700, 1100, 1900, 2700, 3100};
  s.tsizes = {10, 50, 100, 500, 700, 2000, 4000, 8000, 12000};
  s.dsizes = {1, 3, 5};
  s.cpu_tiles = {1, 2, 4, 8, 10};
  s.band_fractions = {0.07, 0.19, 0.33, 0.52, 0.71, 0.86, 1.0};
  s.halo_fractions = {0.0, 0.04, 0.13, 0.31, 0.62, 1.0};
  s.gpu_tiles = {1, 4, 8, 11, 16, 21, 25};
  return s;
}

ParamSpace ParamSpace::reduced() {
  // Dims must be large enough relative to the simulated GPUs' lane counts
  // (~450-512) for offload to win anywhere, or the training tables would
  // be degenerate.
  ParamSpace s;
  s.dims = {240, 480, 1000};
  s.tsizes = {10, 100, 1000, 8000};
  s.dsizes = {1, 5};
  // Five cpu-tile values, as in the paper's Table 3: the training-set
  // builder takes the best-5 points per instance, and CPU-bound instances
  // must be able to fill all five with CPU-only configurations.
  s.cpu_tiles = {1, 2, 4, 8, 10};
  s.band_fractions = {0.2, 0.55, 1.0};
  s.halo_fractions = {0.0, 0.3, 1.0};
  s.gpu_tiles = {1, 8};
  return s;
}

std::vector<core::InputParams> ParamSpace::instances() const {
  std::vector<core::InputParams> out;
  out.reserve(dims.size() * tsizes.size() * dsizes.size());
  for (std::size_t dim : dims) {
    for (double tsize : tsizes) {
      for (int dsize : dsizes) {
        out.push_back(core::InputParams{dim, tsize, dsize});
      }
    }
  }
  return out;
}

std::vector<long long> ParamSpace::bands_for(std::size_t dim) const {
  std::set<long long> values;
  values.insert(-1);
  for (double f : band_fractions) {
    const auto b = static_cast<long long>(std::llround(f * static_cast<double>(dim - 1)));
    values.insert(std::clamp<long long>(b, 0, static_cast<long long>(dim) - 1));
  }
  return {values.begin(), values.end()};
}

std::vector<long long> ParamSpace::halos_for(std::size_t dim, long long band,
                                             int max_gpus) const {
  std::set<long long> values;
  values.insert(-1);
  if (band >= 0 && max_gpus >= 2) {
    const long long hmax = core::TunableParams::max_halo(dim, band);
    for (double f : halo_fractions) {
      const auto h = static_cast<long long>(std::llround(f * static_cast<double>(hmax)));
      values.insert(std::clamp<long long>(h, 0, hmax));
    }
  }
  return {values.begin(), values.end()};
}

std::vector<int> ParamSpace::splits_for(const core::TunableParams& params) const {
  if (!params.uses_gpu()) return {1};
  std::set<int> values{1};
  for (int k : band_splits) {
    if (k >= 1) values.insert(k);
  }
  return {values.begin(), values.end()};
}

std::vector<std::size_t> ParamSpace::strips_for(std::size_t dim) const {
  std::set<std::size_t> values{0};
  for (std::size_t s : strip_rows) {
    if (s > 0) values.insert(std::min(s, dim));
  }
  return {values.begin(), values.end()};
}

std::vector<core::TunableParams> ParamSpace::configs_for(std::size_t dim, int max_gpus) const {
  // Enumerate, normalize, deduplicate: the paper's overloaded encoding
  // means several raw tuples collapse to one executable configuration.
  std::set<std::tuple<int, long long, long long, int>> seen;
  std::vector<core::TunableParams> out;
  auto push = [&](const core::TunableParams& raw) {
    const core::TunableParams p = raw.normalized(dim);
    const auto key = std::make_tuple(p.cpu_tile, p.band, p.halo, p.gpu_tile);
    if (seen.insert(key).second) out.push_back(p);
  };

  for (int ct : cpu_tiles) {
    // Pure-CPU configuration.
    push(core::TunableParams{ct, -1, -1, 1});
    if (max_gpus < 1) continue;
    for (long long band : bands_for(dim)) {
      if (band < 0) continue;
      for (long long halo : halos_for(dim, band, max_gpus)) {
        if (halo < 0) {
          // Single GPU: the gpu-tile axis applies.
          for (int gt : gpu_tiles) push(core::TunableParams{ct, band, -1, gt});
        } else {
          // Dual GPU (untiled; see TunableParams::normalized).
          push(core::TunableParams{ct, band, halo, 1});
        }
      }
    }
  }
  return out;
}

}  // namespace wavetune::autotune
