#include "autotune/sched_select.hpp"

#include "core/diag.hpp"

namespace wavetune::autotune {

double cpu_phase_cost_ns(cpu::Scheduler scheduler, const core::InputParams& in,
                         const core::TunableParams& params, const sim::CpuModel& cpu) {
  in.validate();
  const core::TunableParams p = params.normalized(in.dim);
  const std::size_t dim = in.dim;
  const std::size_t d_total = core::num_diagonals(dim);
  const std::size_t d0 = p.uses_gpu() ? p.gpu_d_begin(dim) : d_total;
  const std::size_t d1 = p.uses_gpu() ? p.gpu_d_end(dim) : d_total;
  const auto tile = static_cast<std::size_t>(p.cpu_tile);

  double total = 0.0;
  if (d0 > 0) {
    const cpu::TiledRegion phase1{dim, 0, d0, tile};
    total += cpu::wavefront_cost_ns(scheduler, phase1, cpu, in.tsize, in.elem_bytes());
  }
  if (d1 < d_total) {
    const cpu::TiledRegion phase3{dim, d1, d_total, tile};
    total += cpu::wavefront_cost_ns(scheduler, phase3, cpu, in.tsize, in.elem_bytes());
  }
  return total;
}

cpu::Scheduler choose_cpu_scheduler(const core::InputParams& in,
                                    const core::TunableParams& params,
                                    const sim::CpuModel& cpu) {
  const double barrier = cpu_phase_cost_ns(cpu::Scheduler::kBarrier, in, params, cpu);
  const double dataflow = cpu_phase_cost_ns(cpu::Scheduler::kDataflow, in, params, cpu);
  return dataflow < barrier ? cpu::Scheduler::kDataflow : cpu::Scheduler::kBarrier;
}

const char* preferred_cpu_backend(const core::InputParams& in,
                                  const core::TunableParams& params,
                                  const sim::SystemProfile& profile) {
  return choose_cpu_scheduler(in, params, profile.cpu) == cpu::Scheduler::kDataflow
             ? "cpu-dataflow"
             : "cpu-tiled";
}

}  // namespace wavetune::autotune
