#include "autotune/sched_select.hpp"

#include "core/diag.hpp"
#include "cpu/tiled_wavefront.hpp"

namespace wavetune::autotune {

double phase_cost_ns(const core::PhaseDesc& phase, std::size_t dim, double tsize_units,
                     std::size_t elem_bytes, const sim::CpuModel& cpu) {
  const cpu::TiledRegion region{dim, phase.d_begin, phase.d_end, phase.cpu_tile};
  return cpu::wavefront_cost_ns(phase.scheduler, region, cpu, tsize_units, elem_bytes);
}

double cpu_phase_cost_ns(cpu::Scheduler scheduler, const core::InputParams& in,
                         const core::TunableParams& params, const sim::CpuModel& cpu) {
  // Walk the exact program the executor would interpret for this tuning —
  // one source of truth for the schedule shape, not a re-derivation.
  const core::PhaseProgram program = core::plan_phases(in, params, scheduler);
  double total = 0.0;
  for (const core::PhaseDesc& ph : program.phases) {
    if (ph.is_cpu()) total += phase_cost_ns(ph, program.dim, in.tsize, in.elem_bytes(), cpu);
  }
  return total;
}

cpu::Scheduler choose_cpu_scheduler(const core::InputParams& in,
                                    const core::TunableParams& params,
                                    const sim::CpuModel& cpu) {
  const double barrier = cpu_phase_cost_ns(cpu::Scheduler::kBarrier, in, params, cpu);
  const double dataflow = cpu_phase_cost_ns(cpu::Scheduler::kDataflow, in, params, cpu);
  return dataflow < barrier ? cpu::Scheduler::kDataflow : cpu::Scheduler::kBarrier;
}

core::PhaseProgram tune_cpu_schedulers(core::PhaseProgram program, const core::InputParams& in,
                                       const sim::CpuModel& cpu) {
  for (core::PhaseDesc& ph : program.phases) {
    if (!ph.is_cpu()) continue;
    core::PhaseDesc barrier = ph;
    barrier.scheduler = cpu::Scheduler::kBarrier;
    core::PhaseDesc dataflow = ph;
    dataflow.scheduler = cpu::Scheduler::kDataflow;
    const double b = phase_cost_ns(barrier, program.dim, in.tsize, in.elem_bytes(), cpu);
    const double f = phase_cost_ns(dataflow, program.dim, in.tsize, in.elem_bytes(), cpu);
    ph.scheduler = f < b ? cpu::Scheduler::kDataflow : cpu::Scheduler::kBarrier;
  }
  return program;
}

const char* preferred_cpu_backend(const core::InputParams& in,
                                  const core::TunableParams& params,
                                  const sim::SystemProfile& profile) {
  return choose_cpu_scheduler(in, params, profile.cpu) == cpu::Scheduler::kDataflow
             ? "cpu-dataflow"
             : "cpu-tiled";
}

}  // namespace wavetune::autotune
