#include "autotune/training.hpp"

#include <stdexcept>

namespace wavetune::autotune {

TrainingTables build_training(const std::vector<InstanceResult>& results,
                              const TrainingOptions& options) {
  if (options.instance_stride == 0) {
    throw std::invalid_argument("build_training: zero instance stride");
  }
  if (options.instance_offset >= options.instance_stride) {
    throw std::invalid_argument("build_training: offset >= stride");
  }
  if (options.best_k == 0) throw std::invalid_argument("build_training: best_k == 0");

  TrainingTables tables;
  for (std::size_t idx = 0; idx < results.size(); ++idx) {
    const InstanceResult& res = results[idx];
    if (idx % options.instance_stride != options.instance_offset) {
      tables.holdout.push_back(res);
      continue;
    }

    const std::vector<double> base{static_cast<double>(res.instance.dim), res.instance.tsize,
                                   static_cast<double>(res.instance.dsize)};

    // Parallel gate: does the best tuned configuration beat sequential?
    // gpu-use: was a GPU employed at the best point? Both are genuine
    // binary decisions of the instance, so they are labelled once from the
    // optimum rather than replicated across the top-k (whose tail mixes
    // classes near the offload boundary and caps the achievable accuracy).
    const auto best = res.best();
    if (best) {
      tables.parallel_gate.add(base, best->rtime_ns < res.serial_ns ? 1.0 : -1.0);
      tables.gpu_use.add(base, best->params.uses_gpu() ? 1.0 : 0.0);
    }

    // Best-k performance points carry the per-parameter targets.
    for (const SearchRecord& rec : res.top_k(options.best_k)) {
      const double gpu_use = rec.params.uses_gpu() ? 1.0 : 0.0;
      tables.cpu_tile.add(base, static_cast<double>(rec.params.cpu_tile));

      std::vector<double> band_x = base;
      band_x.push_back(gpu_use);
      tables.band.add(band_x, static_cast<double>(rec.params.band));

      std::vector<double> halo_x = base;
      halo_x.push_back(static_cast<double>(rec.params.cpu_tile));
      halo_x.push_back(static_cast<double>(rec.params.band));
      tables.halo.add(halo_x, static_cast<double>(rec.params.halo));
    }
  }
  return tables;
}

}  // namespace wavetune::autotune
