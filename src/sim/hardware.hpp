// Hardware cost models for the simulated heterogeneous platform.
//
// The paper's testbed (its Table 4) is three 2010-2012 machines with real
// NVIDIA GPUs. This environment has neither the machines nor any GPU, so
// per the reproduction's substitution rule we model each component with a
// small set of calibrated cost parameters. Every constant that shapes the
// tuning space lives here (and in system_profile.cpp), in one place, so the
// calibration targets listed in DESIGN.md §7 can be audited and adjusted.
//
// Units: all times in simulated nanoseconds; `units` refers to the paper's
// tsize unit — the execution time of one iteration of the synthetic kernel
// on a single reference CPU core (we define the reference as 1 ns/unit).
#pragma once

#include <cstddef>
#include <string>

namespace wavetune::sim {

/// Multicore CPU model.
struct CpuModel {
  std::string name;
  int physical_cores = 1;
  int hw_threads = 1;       ///< incl. hyperthreads (paper Table 4 "Cores (HT)")
  double clock_mhz = 1000;  ///< as reported in paper Table 4

  double ns_per_unit = 1.0;      ///< single-thread time per tsize unit
  double mem_ns_per_byte = 0.05; ///< per-element per-byte cost, cache-resident tiles
  double mem_spill_factor = 3.0; ///< multiplier when the tile working set spills L2
  double l2_bytes_per_core = 256 * 1024;
  double tile_sched_ns = 150.0;  ///< per-tile claim/enqueue overhead (barriered scheduler)
  /// One lowered tile-kernel invocation (core/lowered.hpp): the per-TILE
  /// dispatch term. Replaces the per-segment dispatch of the pre-lowering
  /// engine, which paid one type-erased call per tile ROW.
  double kernel_dispatch_ns = 20.0;
  double barrier_ns = 2500.0;    ///< per tile-diagonal barrier across the pool
  /// Per-tile dependency bookkeeping of the dataflow scheduler (two
  /// counter decrements + deque push/pop, often inline-continued): what a
  /// tile pays INSTEAD of tile_sched_ns + its share of barrier_ns.
  double dataflow_dep_ns = 90.0;
  double ht_yield = 0.3;         ///< extra throughput from SMT beyond physical cores

  /// Usable parallel throughput, in "core equivalents".
  double effective_parallelism() const;

  /// Time to compute one element serially (cache-friendly layout).
  double element_ns(double tsize_units, std::size_t elem_bytes) const;

  /// Per-element time inside a TxT tile (adds spill penalty if the tile
  /// working set exceeds the per-core L2 budget).
  double tiled_element_ns(double tsize_units, std::size_t elem_bytes, std::size_t tile) const;
};

/// GPU accelerator model (OpenCL view: compute units x SIMD lanes).
struct GpuModel {
  std::string name;
  int compute_units = 14;
  int simd_width = 32;      ///< concurrent work-items per compute unit
  double clock_mhz = 1200;
  double mem_gb = 1.5;

  double thread_ns_per_unit = 40.0;  ///< per work-item time per tsize unit
  double mem_ns_per_byte = 0.6;      ///< per work-item global-memory cost
  double launch_ns = 20000.0;        ///< kernel launch latency
  double wg_sync_ns = 180.0;         ///< work-group barrier cost

  /// Total concurrent work-items the device can hold in flight.
  std::size_t lanes() const;

  /// Time for one work-item to process one element.
  double item_ns(double tsize_units, std::size_t elem_bytes) const;

  /// Duration of an *untiled* 1-D kernel over `items` independent
  /// work-items (one diagonal): launch + occupancy-limited waves.
  double kernel_ns(std::size_t items, double tsize_units, std::size_t elem_bytes) const;

  /// Duration of a *tiled* kernel: `groups` work-groups, each running
  /// `serial_steps` intra-group wavefront steps separated by `syncs`
  /// work-group barriers. Groups are scheduled one per compute unit.
  double tiled_kernel_ns(std::size_t groups, std::size_t serial_steps, std::size_t syncs,
                         double tsize_units, std::size_t elem_bytes) const;
};

/// Host <-> device interconnect model (shared across all GPUs of a system,
/// matching the single PCIe root of the paper's machines).
struct PcieModel {
  double bandwidth_gb_s = 1.5;  ///< effective (pageable-memory) bandwidth
  double latency_ns = 12000.0;  ///< per-transfer fixed cost

  double transfer_ns(std::size_t bytes) const;
};

}  // namespace wavetune::sim
