// Calibrated system profiles.
//
// Calibration rationale (see DESIGN.md §7 for the target list):
//  * CPU ns_per_unit scales inversely with the Table 4 clock, with the
//    i7-3820 as the 1 ns/unit reference core (the paper defines tsize in
//    units of one synthetic-kernel iteration on one CPU core).
//  * GPU thread_ns_per_unit is set so the best hybrid configuration peaks
//    around 20x over the sequential baseline (paper §1: max 20x, avg 7.8x)
//    and so the per-system GPU-use thresholds order correctly
//    (i3 thresholds below i7 thresholds, Fig. 5).
//  * PCIe effective bandwidth reflects pageable-memory transfers on
//    2010-2012 hosts (well under the PCIe 2.0 peak), which is what pushes
//    the dsize=5 offload threshold up, as in the paper's heatmaps.
//  * launch_ns is the dominant per-diagonal cost; it is what makes
//    GPU-only execution lose to the multicore CPU at low tsize on the i7
//    systems (paper §4.1.2).
#include "sim/system_profile.hpp"

#include <cmath>
#include <sstream>
#include <stdexcept>

#include "util/strings.hpp"

namespace wavetune::sim {

const GpuModel& SystemProfile::gpu(std::size_t index) const {
  if (index >= gpus.size()) {
    throw std::invalid_argument("SystemProfile::gpu: system '" + name + "' has only " +
                                std::to_string(gpus.size()) + " GPU(s)");
  }
  return gpus[index];
}

SystemProfile SystemProfile::scaled(double cpu_scale, double gpu_scale) const {
  const auto ok = [](double s) { return s > 0.0 && std::isfinite(s); };
  if (!ok(cpu_scale) || !ok(gpu_scale)) {
    throw std::invalid_argument("SystemProfile::scaled: scales must be positive and finite");
  }
  SystemProfile out = *this;
  out.cpu.ns_per_unit *= cpu_scale;
  out.cpu.mem_ns_per_byte *= cpu_scale;
  out.cpu.tile_sched_ns *= cpu_scale;
  out.cpu.kernel_dispatch_ns *= cpu_scale;
  out.cpu.barrier_ns *= cpu_scale;
  out.cpu.dataflow_dep_ns *= cpu_scale;
  for (GpuModel& g : out.gpus) {
    g.thread_ns_per_unit *= gpu_scale;
    g.mem_ns_per_byte *= gpu_scale;
    g.launch_ns *= gpu_scale;
    g.wg_sync_ns *= gpu_scale;
  }
  out.pcie.latency_ns *= gpu_scale;
  out.pcie.bandwidth_gb_s /= gpu_scale;
  return out;
}

std::string SystemProfile::describe() const {
  std::ostringstream ss;
  ss << name << ": CPU " << cpu.name << " (" << cpu.clock_mhz << " MHz, " << cpu.hw_threads
     << " HT threads, " << cpu.physical_cores << " physical)";
  for (const auto& g : gpus) {
    ss << " + GPU " << g.name << " (" << g.compute_units << " CU, " << g.clock_mhz << " MHz)";
  }
  return ss.str();
}

namespace {

CpuModel cpu_i3_540() {
  CpuModel c;
  c.name = "i3-540";
  c.physical_cores = 2;
  c.hw_threads = 4;
  c.clock_mhz = 1200;
  c.ns_per_unit = 3.0;  // slowest cores of the three systems
  c.mem_ns_per_byte = 0.06;
  c.tile_sched_ns = 180.0;
  c.kernel_dispatch_ns = 24.0;
  c.barrier_ns = 2200.0;
  c.dataflow_dep_ns = 110.0;
  c.ht_yield = 0.3;
  c.l2_bytes_per_core = 256 * 1024;
  return c;
}

CpuModel cpu_i7_2600k() {
  CpuModel c;
  c.name = "i7-2600K";
  c.physical_cores = 4;
  c.hw_threads = 8;
  c.clock_mhz = 1600;
  c.ns_per_unit = 2.25;
  c.mem_ns_per_byte = 0.05;
  c.tile_sched_ns = 150.0;
  c.kernel_dispatch_ns = 20.0;
  c.barrier_ns = 2500.0;
  c.dataflow_dep_ns = 90.0;
  c.ht_yield = 0.3;
  c.l2_bytes_per_core = 256 * 1024;
  return c;
}

CpuModel cpu_i7_3820() {
  CpuModel c;
  c.name = "i7-3820";
  c.physical_cores = 4;
  c.hw_threads = 8;
  c.clock_mhz = 3601;
  c.ns_per_unit = 1.0;  // reference core: 1 ns per tsize unit
  c.mem_ns_per_byte = 0.04;
  c.tile_sched_ns = 120.0;
  c.kernel_dispatch_ns = 16.0;
  c.barrier_ns = 2000.0;
  c.dataflow_dep_ns = 70.0;
  c.ht_yield = 0.3;
  c.l2_bytes_per_core = 256 * 1024;
  return c;
}

GpuModel gtx_480() {
  GpuModel g;
  g.name = "GTX 480";
  g.compute_units = 15;
  g.simd_width = 32;
  g.clock_mhz = 1401;
  g.mem_gb = 1.6;
  g.thread_ns_per_unit = 70.0;
  g.mem_ns_per_byte = 0.6;
  g.launch_ns = 25000.0;
  // Effective intra-group step cost: the explicit barrier plus the
  // triangular fill/drain underutilisation of a tile-local wavefront
  // (idle lanes at the tile corners), which the serial-steps model does
  // not otherwise charge. Calibrated so intra-GPU tiling stays
  // unprofitable at the i3's offload boundary, matching the paper's
  // "GPU tiling was not beneficial in our search space" (§4.1.1).
  g.wg_sync_ns = 2000.0;
  return g;
}

GpuModel gtx_590_die() {
  GpuModel g;
  g.name = "GTX 590";
  g.compute_units = 16;
  g.simd_width = 32;
  g.clock_mhz = 1215;
  g.mem_gb = 1.6;
  g.thread_ns_per_unit = 90.0;
  g.mem_ns_per_byte = 0.6;
  g.launch_ns = 25000.0;
  g.wg_sync_ns = 150.0;
  return g;
}

GpuModel tesla(const std::string& model) {
  GpuModel g;
  g.name = "Tesla " + model;
  g.compute_units = 14;
  g.simd_width = 32;
  g.clock_mhz = 1147;
  g.mem_gb = 3.2;
  g.thread_ns_per_unit = 70.0;
  g.mem_ns_per_byte = 0.5;
  g.launch_ns = 22000.0;
  g.wg_sync_ns = 140.0;
  return g;
}

}  // namespace

SystemProfile make_i3_540() {
  SystemProfile s;
  s.name = "i3-540";
  s.cpu = cpu_i3_540();
  s.gpus = {gtx_480()};
  s.pcie.bandwidth_gb_s = 0.45;  // oldest host: slowest effective PCIe
  s.pcie.latency_ns = 14000.0;
  return s;
}

SystemProfile make_i7_2600k() {
  SystemProfile s;
  s.name = "i7-2600K";
  s.cpu = cpu_i7_2600k();
  // The paper's Table 4 lists "4x (GTX 590)": two dual-die boards. The
  // tuner only ever uses up to two devices (the paper's halo encoding
  // limits gpu-count to 2), but the profile carries all four.
  s.gpus = {gtx_590_die(), gtx_590_die(), gtx_590_die(), gtx_590_die()};
  s.pcie.bandwidth_gb_s = 0.55;
  s.pcie.latency_ns = 12000.0;
  return s;
}

SystemProfile make_i7_3820() {
  SystemProfile s;
  s.name = "i7-3820";
  s.cpu = cpu_i7_3820();
  s.gpus = {tesla("C2070"), tesla("C2075")};
  s.pcie.bandwidth_gb_s = 1.2;  // newest host: best effective PCIe
  s.pcie.latency_ns = 10000.0;
  return s;
}

std::vector<SystemProfile> paper_systems() {
  return {make_i3_540(), make_i7_2600k(), make_i7_3820()};
}

SystemProfile profile_by_name(const std::string& name) {
  const std::string key = util::to_lower(name);
  if (key == "i3-540" || key == "i3" || key == "i3_540") return make_i3_540();
  if (key == "i7-2600k" || key == "i7-2600K" || key == "2600k" || key == "i7_2600k") {
    return make_i7_2600k();
  }
  if (key == "i7-3820" || key == "3820" || key == "i7_3820") return make_i7_3820();
  throw std::invalid_argument("profile_by_name: unknown system '" + name +
                              "' (expected i3-540, i7-2600K or i7-3820)");
}

}  // namespace wavetune::sim
