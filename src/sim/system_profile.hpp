// The three experimental systems of the paper's Table 4, plus a registry
// for user-defined profiles. All calibration constants are centralised in
// system_profile.cpp; DESIGN.md §7 lists the qualitative targets they were
// tuned against.
#pragma once

#include <string>
#include <vector>

#include "sim/hardware.hpp"

namespace wavetune::sim {

/// A complete machine: one multicore CPU, zero or more GPUs, and the
/// host<->device interconnect they share.
struct SystemProfile {
  std::string name;
  CpuModel cpu;
  std::vector<GpuModel> gpus;
  PcieModel pcie;

  int gpu_count() const { return static_cast<int>(gpus.size()); }

  /// The device used for single-GPU offload (first GPU). Throws if none.
  const GpuModel& gpu(std::size_t index = 0) const;

  /// One-line human description, mirroring the paper's Table 4 row.
  std::string describe() const;

  /// Copy with every CPU time constant multiplied by `cpu_scale` and every
  /// GPU + interconnect time constant by `gpu_scale` (PCIe latency scales
  /// up, bandwidth down, so transfer time scales exactly). Because each
  /// modelled phase cost is a linear combination of those constants, the
  /// scaled profile's phase estimates are exactly scale x the originals —
  /// which is what lets profile::recalibrate fit the scales from measured
  /// residuals and bake them back into a profile. Throws
  /// std::invalid_argument unless both scales are positive and finite.
  SystemProfile scaled(double cpu_scale, double gpu_scale) const;
};

/// Paper Table 4, row 1: Intel i3-540 + GeForce GTX 480 (single GPU,
/// slow CPU cores — the system where offload pays off earliest).
SystemProfile make_i3_540();

/// Paper Table 4, row 2: Intel i7-2600K + 4x GeForce GTX 590 dies
/// (fast CPU, several consumer GPUs).
SystemProfile make_i7_2600k();

/// Paper Table 4, row 3: Intel i7-3820 + Tesla C2070/C2075 (fastest CPU,
/// two compute GPUs).
SystemProfile make_i7_3820();

/// All three paper systems, in Table 4 order.
std::vector<SystemProfile> paper_systems();

/// Looks a profile up by name ("i3-540", "i7-2600K", "i7-3820",
/// case-insensitive). Throws std::invalid_argument on unknown names.
SystemProfile profile_by_name(const std::string& name);

}  // namespace wavetune::sim
