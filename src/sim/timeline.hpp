// Discrete-event resource timelines.
//
// The simulated platform is modelled as a set of exclusive FIFO resources
// (each GPU's execution engine, the shared PCIe link, ...). An operation
// acquires a resource no earlier than its dependencies are ready and holds
// it for a model-computed duration. Elapsed simulated time is the max of
// all completion timestamps. This is a classic list-scheduling /
// discrete-event formulation: deterministic, exact, and independent of
// host wall-clock speed.
#pragma once

#include <cstddef>
#include <string>

namespace wavetune::sim {

/// Simulated nanoseconds since the start of the run.
using SimTime = double;

/// An exclusive, in-order resource. Acquisitions are FIFO: each new
/// acquisition starts at max(earliest, previous completion).
class Timeline {
public:
  explicit Timeline(std::string name = "resource");

  struct Slot {
    SimTime start = 0.0;
    SimTime end = 0.0;
  };

  /// Reserves the resource for `duration` ns, starting no earlier than
  /// `earliest`. Returns the scheduled [start, end] slot.
  /// Throws std::invalid_argument on negative duration.
  Slot acquire(SimTime earliest, SimTime duration);

  /// Next instant at which the resource is free.
  SimTime available_at() const { return available_at_; }

  /// Total time the resource has been held (for utilisation reports).
  SimTime busy_total() const { return busy_total_; }

  /// Number of acquisitions so far.
  std::size_t acquisitions() const { return acquisitions_; }

  /// Fraction of [0, available_at()] the resource was busy (0 if unused).
  double utilization() const;

  const std::string& name() const { return name_; }

  /// Resets to the initial idle state at t=0.
  void reset();

private:
  std::string name_;
  SimTime available_at_ = 0.0;
  SimTime busy_total_ = 0.0;
  std::size_t acquisitions_ = 0;
};

/// Formats nanoseconds with an adaptive unit (ns/us/ms/s).
std::string format_time(SimTime ns);

}  // namespace wavetune::sim
