#include "sim/timeline.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

namespace wavetune::sim {

Timeline::Timeline(std::string name) : name_(std::move(name)) {}

Timeline::Slot Timeline::acquire(SimTime earliest, SimTime duration) {
  if (duration < 0.0) throw std::invalid_argument("Timeline::acquire: negative duration");
  if (earliest < 0.0) throw std::invalid_argument("Timeline::acquire: negative earliest");
  Slot slot;
  slot.start = std::max(earliest, available_at_);
  slot.end = slot.start + duration;
  available_at_ = slot.end;
  busy_total_ += duration;
  ++acquisitions_;
  return slot;
}

double Timeline::utilization() const {
  if (available_at_ <= 0.0) return 0.0;
  return busy_total_ / available_at_;
}

void Timeline::reset() {
  available_at_ = 0.0;
  busy_total_ = 0.0;
  acquisitions_ = 0;
}

std::string format_time(SimTime ns) {
  std::ostringstream ss;
  ss.precision(4);
  if (ns < 1e3) {
    ss << ns << " ns";
  } else if (ns < 1e6) {
    ss << ns / 1e3 << " us";
  } else if (ns < 1e9) {
    ss << ns / 1e6 << " ms";
  } else {
    ss << ns / 1e9 << " s";
  }
  return ss.str();
}

}  // namespace wavetune::sim
