#include "sim/hardware.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace wavetune::sim {

double CpuModel::effective_parallelism() const {
  const double smt_extra = (hw_threads > physical_cores) ? ht_yield : 0.0;
  return static_cast<double>(physical_cores) * (1.0 + smt_extra);
}

double CpuModel::element_ns(double tsize_units, std::size_t elem_bytes) const {
  if (tsize_units < 0.0) throw std::invalid_argument("CpuModel::element_ns: negative tsize");
  return tsize_units * ns_per_unit + static_cast<double>(elem_bytes) * mem_ns_per_byte;
}

double CpuModel::tiled_element_ns(double tsize_units, std::size_t elem_bytes,
                                  std::size_t tile) const {
  if (tile == 0) throw std::invalid_argument("CpuModel::tiled_element_ns: zero tile");
  double mem = static_cast<double>(elem_bytes) * mem_ns_per_byte;
  // A tile touches its own cells plus a one-cell halo of neighbours. If that
  // working set spills the per-core L2 budget, the memory term inflates.
  const double working_set = static_cast<double>((tile + 2) * (tile + 2)) *
                             static_cast<double>(elem_bytes);
  if (working_set > l2_bytes_per_core) mem *= mem_spill_factor;
  return tsize_units * ns_per_unit + mem;
}

std::size_t GpuModel::lanes() const {
  return static_cast<std::size_t>(compute_units) * static_cast<std::size_t>(simd_width);
}

double GpuModel::item_ns(double tsize_units, std::size_t elem_bytes) const {
  if (tsize_units < 0.0) throw std::invalid_argument("GpuModel::item_ns: negative tsize");
  return tsize_units * thread_ns_per_unit + static_cast<double>(elem_bytes) * mem_ns_per_byte;
}

double GpuModel::kernel_ns(std::size_t items, double tsize_units,
                           std::size_t elem_bytes) const {
  if (items == 0) return launch_ns;
  // Continuous occupancy model: a kernel of N independent work-items takes
  // max(1, N/lanes) "waves". The continuous form (rather than ceil) keeps
  // the cost surface smooth, which both matches throughput-oriented real
  // hardware (partial waves overlap) and keeps the tuning space free of
  // artificial staircase minima.
  const double waves = std::max(1.0, static_cast<double>(items) / static_cast<double>(lanes()));
  return launch_ns + waves * item_ns(tsize_units, elem_bytes);
}

double GpuModel::tiled_kernel_ns(std::size_t groups, std::size_t serial_steps,
                                 std::size_t syncs, double tsize_units,
                                 std::size_t elem_bytes) const {
  if (groups == 0) return launch_ns;
  // One work-group resident per compute unit; groups beyond that run in
  // successive waves. Within a group the intra-tile wavefront serialises
  // `serial_steps` steps, each bounded by one item plus a barrier.
  const double group_waves =
      std::max(1.0, static_cast<double>(groups) / static_cast<double>(compute_units));
  const double group_ns = static_cast<double>(serial_steps) * item_ns(tsize_units, elem_bytes) +
                          static_cast<double>(syncs) * wg_sync_ns;
  return launch_ns + group_waves * group_ns;
}

double PcieModel::transfer_ns(std::size_t bytes) const {
  if (bandwidth_gb_s <= 0.0) throw std::invalid_argument("PcieModel: non-positive bandwidth");
  const double bw_bytes_per_ns = bandwidth_gb_s;  // 1 GB/s == 1 byte/ns
  return latency_ns + static_cast<double>(bytes) / bw_bytes_per_ns;
}

}  // namespace wavetune::sim
